"""Property-based tests of the paper's theoretical guarantees.

Theorem 1 is a *universal* guarantee — the replication factor of any
Distributed NE run is bounded by ``(|E| + |V| + |P|)/|V|`` — so it is
the perfect target for hypothesis: random graphs, random partition
counts, random seeds, the bound must always hold.  (The theorem is
stated for the pure algorithm, λ→0; the paper notes multi-expansion is
excluded, so the property run pins ``lam`` to its minimum.)

Partition validity (disjoint cover of E) is likewise checked for every
partitioner in the registry on random graphs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import canonical_edges
from repro.metrics.bounds import theorem1_upper_bound
from repro.metrics.quality import validate_assignment
from repro.partitioners import PARTITIONER_REGISTRY

SLOW_SETTINGS = settings(max_examples=15, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def _random_graph(draw_edges: list[tuple[int, int]]) -> CSRGraph | None:
    edges = canonical_edges(np.array(draw_edges, dtype=np.int64))
    if len(edges) == 0:
        return None
    return CSRGraph(edges)


edge_lists = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)),
    min_size=1, max_size=200)


class TestTheorem1Property:
    @given(edges=edge_lists, p=st.integers(2, 6), seed=st.integers(0, 99))
    @SLOW_SETTINGS
    def test_rf_never_exceeds_bound(self, edges, p, seed):
        graph = _random_graph(edges)
        if graph is None:
            return
        part = DistributedNE(p, seed=seed, lam=1e-9).partition(graph)
        covered = int(np.count_nonzero(graph.degrees()))
        ub = theorem1_upper_bound(covered, graph.num_edges, p)
        rf = part.replication_factor()
        assert rf <= ub + 1e-9, f"RF {rf} exceeds Theorem 1 bound {ub}"

    @given(edges=edge_lists, seed=st.integers(0, 99))
    @SLOW_SETTINGS
    def test_bound_also_holds_with_multi_expansion(self, edges, seed):
        """Empirically the bound holds with λ=0.1 too (the paper's
        production configuration) — a stronger observation than the
        theorem itself."""
        graph = _random_graph(edges)
        if graph is None:
            return
        part = DistributedNE(4, seed=seed, lam=0.1).partition(graph)
        covered = int(np.count_nonzero(graph.degrees()))
        ub = theorem1_upper_bound(covered, graph.num_edges, 4)
        assert part.replication_factor() <= ub + 1e-9


class TestPartitionValidityProperty:
    @given(edges=edge_lists, seed=st.integers(0, 20))
    @SLOW_SETTINGS
    def test_every_method_produces_a_true_partition(self, edges, seed):
        graph = _random_graph(edges)
        if graph is None:
            return
        for name, cls in PARTITIONER_REGISTRY.items():
            result = cls(3, seed=seed).partition(graph)
            validate_assignment(graph, result.assignment, 3)
            assert len(result.assignment) == graph.num_edges, name

    @given(edges=edge_lists, seed=st.integers(0, 20), p=st.integers(1, 8))
    @SLOW_SETTINGS
    def test_rf_at_least_one(self, edges, seed, p):
        graph = _random_graph(edges)
        if graph is None:
            return
        part = DistributedNE(p, seed=seed).partition(graph)
        assert part.replication_factor() >= 1.0 - 1e-12


class TestDeterminismProperty:
    @given(edges=edge_lists, seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_same_result(self, edges, seed):
        graph = _random_graph(edges)
        if graph is None:
            return
        a = DistributedNE(4, seed=seed).partition(graph)
        b = DistributedNE(4, seed=seed).partition(graph)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.iterations == b.iterations
