"""Unit tests for Spinner, ParMETIS-like, XtraPuLP, Sheep, and the
vertex->edge conversion."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, ring_graph
from repro.partitioners.base import VertexPartition
from repro.partitioners.hashing import RandomPartitioner
from repro.partitioners.metis_like import MetisLikePartitioner
from repro.partitioners.sheep import SheepPartitioner, _min_degree_order
from repro.partitioners.spinner import SpinnerPartitioner
from repro.partitioners.vertex_to_edge import vertex_to_edge_partition
from repro.partitioners.xtrapulp import XtraPuLPPartitioner
from tests.conftest import assert_valid_partition


class TestVertexToEdge:
    def test_internal_edges_stay(self, two_triangles):
        vp = VertexPartition(two_triangles, 2,
                             np.array([0, 0, 0, 1, 1, 1]), method="manual")
        ep = vertex_to_edge_partition(vp)
        # first triangle's edges all -> 0, second's -> 1
        assert ep.assignment[:3].tolist() == [0, 0, 0]
        assert ep.assignment[3:].tolist() == [1, 1, 1]

    def test_cut_edges_pick_an_endpoint_partition(self, path4):
        vp = VertexPartition(path4, 2, np.array([0, 0, 1, 1]), method="manual")
        ep = vertex_to_edge_partition(vp, seed=3)
        # middle edge (1,2) crosses: must land on 0 or 1
        assert ep.assignment[1] in (0, 1)
        assert_valid_partition(ep)

    def test_method_name_tagged(self, triangle):
        vp = VertexPartition(triangle, 1, np.zeros(3, np.int64), method="m")
        ep = vertex_to_edge_partition(vp)
        assert ep.method == "m->edge"

    def test_wrong_assignment_length_rejected(self, triangle):
        with pytest.raises(ValueError):
            VertexPartition(triangle, 2, np.array([0, 1]))


@pytest.mark.parametrize("cls", [SpinnerPartitioner, MetisLikePartitioner,
                                 XtraPuLPPartitioner])
class TestVertexPartitionerContract:
    def test_valid_edge_partition(self, small_rmat, cls):
        assert_valid_partition(cls(8, seed=0).partition(small_rmat))

    def test_vertex_labels_in_range(self, small_rmat, cls):
        vp = cls(8, seed=0).partition_vertices(small_rmat)
        assert vp.assignment.min() >= 0
        assert vp.assignment.max() < 8

    def test_deterministic(self, small_rmat, cls):
        a = cls(4, seed=5).partition_vertices(small_rmat)
        b = cls(4, seed=5).partition_vertices(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)


class TestSpinner:
    def test_locality_on_ring(self):
        """LP on a ring should give contiguous-ish, low-RF partitions."""
        g = CSRGraph(ring_graph(128))
        part = SpinnerPartitioner(4, seed=0).partition(g)
        assert part.replication_factor() < 2.0

    def test_iteration_cap(self, small_rmat):
        part = SpinnerPartitioner(4, seed=0, max_iterations=2).partition_vertices(small_rmat)
        assert part.iterations <= 2


class TestMetisLike:
    def test_coarsening_recorded(self, medium_rmat):
        vp = MetisLikePartitioner(8, seed=0).partition_vertices(medium_rmat)
        assert vp.extra["coarse_levels"] >= 1
        assert vp.extra["coarse_levels_bytes"] > 0

    def test_vertex_counts_balanced(self, medium_rmat):
        vp = MetisLikePartitioner(8, seed=0).partition_vertices(medium_rmat)
        counts = np.bincount(vp.assignment, minlength=8)
        assert counts.max() <= 1.35 * counts.mean()

    def test_excellent_on_road_networks(self):
        """Table 6: ParMETIS RF ~ 1.00 on road networks."""
        g = CSRGraph(grid_road_network(24, 24, seed=0))
        part = MetisLikePartitioner(4, seed=0).partition(g)
        assert part.replication_factor() < 1.25


class TestXtraPuLP:
    def test_good_on_road_networks(self):
        g = CSRGraph(grid_road_network(24, 24, seed=0))
        part = XtraPuLPPartitioner(4, seed=0).partition(g)
        assert part.replication_factor() < 1.6

    def test_bfs_seeding_balanced(self, medium_rmat):
        vp = XtraPuLPPartitioner(8, seed=0).partition_vertices(medium_rmat)
        counts = np.bincount(vp.assignment, minlength=8)
        assert counts.max() <= 2.0 * counts.mean()


class TestSheep:
    def test_valid(self, small_rmat):
        assert_valid_partition(SheepPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = SheepPartitioner(8, seed=0).partition(small_rmat)
        b = SheepPartitioner(8, seed=0).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_empty_graph(self):
        g = CSRGraph(np.empty((0, 2), dtype=np.int64))
        part = SheepPartitioner(4, seed=0).partition(g)
        assert len(part.assignment) == 0

    def test_min_degree_order_is_permutation(self, medium_rmat):
        rank = _min_degree_order(medium_rmat)
        assert sorted(rank.tolist()) == list(range(medium_rmat.num_vertices))

    @staticmethod
    def _min_degree_order_reference(graph):
        """The pre-vectorization tuple-heap implementation, kept
        verbatim as the before/after pin for the flat-array version."""
        import heapq
        n = graph.num_vertices
        degree = graph.degrees().astype(np.int64).copy()
        eliminated = np.zeros(n, dtype=bool)
        rank = np.zeros(n, dtype=np.int64)
        heap = [(int(degree[v]), v) for v in range(n)]
        heapq.heapify(heap)
        next_rank = 0
        while heap:
            d, v = heapq.heappop(heap)
            if eliminated[v]:
                continue
            if d != degree[v]:
                heapq.heappush(heap, (int(degree[v]), v))
                continue
            eliminated[v] = True
            rank[v] = next_rank
            next_rank += 1
            for u in graph.neighbors(v):
                if not eliminated[u]:
                    degree[u] -= 1
                    heapq.heappush(heap, (int(degree[u]), int(u)))
        return rank

    def test_min_degree_order_pins_tuple_heap_reference(
            self, medium_rmat, small_rmat, star, path4):
        """The encoded-key flat-array heap must reproduce the original
        ⟨degree, vertex⟩ tuple-heap elimination order exactly."""
        for graph in (medium_rmat, small_rmat, star, path4,
                      CSRGraph(ring_graph(37))):
            assert np.array_equal(_min_degree_order(graph),
                                  self._min_degree_order_reference(graph))

    def test_assignments_pinned_before_after(self, medium_rmat):
        """Full-partitioner pin: same assignments as a run driven by
        the reference elimination order."""
        import repro.partitioners.sheep as sheep_mod
        current = SheepPartitioner(8, seed=0).partition(medium_rmat)
        orig = sheep_mod._min_degree_order
        sheep_mod._min_degree_order = self._min_degree_order_reference
        try:
            pinned = SheepPartitioner(8, seed=0).partition(medium_rmat)
        finally:
            sheep_mod._min_degree_order = orig
        assert np.array_equal(current.assignment, pinned.assignment)

    def test_min_degree_order_eliminates_leaves_early(self, star):
        """The hub goes last or second-to-last: once 7 leaves are gone
        its degree drops to 1 and it ties with the final leaf."""
        rank = _min_degree_order(star)
        assert rank[0] >= star.num_vertices - 2
        # the first 7 eliminations are all leaves
        assert all(rank[v] < rank[0] for v in range(1, 8))

    def test_edge_balance_reasonable(self, medium_rmat):
        part = SheepPartitioner(8, seed=0).partition(medium_rmat)
        assert part.edge_balance() < 2.0

    def test_beats_random_on_skewed(self, medium_rmat):
        sheep = SheepPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert sheep.replication_factor() < rand.replication_factor()
