"""Telemetry-plane pins: metrics registry, tracer, and neutrality.

The observability contract (PR 9) has three load-bearing clauses:

1. **Zero-cost-when-off** — the process defaults to the null
   registry/tracer; nothing is recorded and nothing is allocated until
   :func:`enable_metrics` installs a live registry or a ``Tracer`` is
   passed explicitly.
2. **Result-neutral** — running with the full telemetry plane live
   (registry + tracer) is bit-identical to running without it:
   assignments, ops counters, and every deterministic accounting total,
   for DNE and SNE, both kernels, all three execution backends.
3. **Deterministic structure** — the *structure* of a trace (span
   names, categories, ordering, args minus wall-clock fields) is a
   pure function of the run parameters, not of the backend or worker
   count; backend identity rides in metadata events only.

Plus the surfaces: Prometheus text on ``GET /metrics`` (valid under
concurrent load, carrying serving *and* cluster series), the
per-run trace endpoint, cache counters on run detail, the ``--trace-out``
/ ``trace summarize`` CLI, and the serve-shutdown summary line.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core.distributed_ne import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import save_edges_tsv
from repro.graph.generators import rmat_edges
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    Tracer,
    disable_metrics,
    enable_metrics,
    get_registry,
    load_trace,
    summarize,
)
from repro.observability.trace import NULL_TRACER
from repro.partitioners.sne import SNEPartitioner

PARALLEL = ("threads", "processes")

#: deterministic extras pinned across traced/untraced runs (the same
#: list tests/test_backends.py pins across backends)
_PINNED_EXTRA = ("cluster", "ops_one_hop", "ops_two_hop", "mem_score",
                 "membership", "model_selection_ops",
                 "model_allocation_ops", "random_seed_requests",
                 "remote_seed_requests", "steps_executed",
                 "steps_skipped")


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with the null registry installed."""
    disable_metrics()
    yield
    disable_metrics()


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph(rmat_edges(9, 6, seed=42))


@pytest.fixture
def workers(request) -> int:
    return request.config.getoption("--workers")


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_and_labels(self):
        reg = MetricsRegistry()
        reg.counter_inc("repro_things_total")
        reg.counter_inc("repro_things_total", 2, method="dne")
        reg.counter_inc("repro_things_total", method="dne")
        reg.gauge_set("repro_depth", 3)
        reg.gauge_set("repro_depth", 7)  # last write wins
        snap = reg.snapshot()
        assert snap["counters"]["repro_things_total"] == 1
        assert snap["counters"]['repro_things_total{method="dne"}'] == 3
        assert snap["gauges"]["repro_depth"] == 7
        assert reg.counter_total("repro_things_total") == 4

    def test_counter_rejects_decrease_and_bad_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter_inc("repro_things_total", -1)
        with pytest.raises(ValueError):
            reg.counter_inc("bad name")
        with pytest.raises(ValueError):
            reg.counter_inc("repro_ok_total", **{"bad-label": "x"})

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.002, 0.002, 0.3, 99.0):
            reg.observe("repro_lat_seconds", v,
                        buckets=(0.001, 0.01, 1.0))
        text = reg.render_prometheus()
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_bucket{le="0.001"} 0' in text
        assert 'repro_lat_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert 'repro_lat_seconds_count 4' in text
        assert 'repro_lat_seconds_sum' in text

    def test_render_prometheus_shape(self):
        """One TYPE line per metric, series sorted, labels escaped."""
        reg = MetricsRegistry()
        reg.counter_inc("repro_b_total", route='say "hi"\n')
        reg.counter_inc("repro_a_total")
        reg.observe("repro_t_seconds", 0.5)
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines[0] == "# TYPE repro_a_total counter"
        assert lines.index("# TYPE repro_a_total counter") < \
            lines.index("# TYPE repro_b_total counter")
        assert r'repro_b_total{route="say \"hi\"\n"} 1' in lines
        # default buckets rendered in full
        assert sum(1 for ln in lines
                   if ln.startswith("repro_t_seconds_bucket")) == \
            len(DEFAULT_BUCKETS) + 1

    def test_null_registry_is_inert(self):
        reg = NullMetricsRegistry()
        assert reg.enabled is False
        reg.counter_inc("repro_x_total", 5)
        reg.gauge_set("repro_g", 1)
        reg.observe("repro_s_seconds", 0.1)
        assert reg.counter_total("repro_x_total") == 0.0
        assert reg.render_prometheus() == ""
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_enable_disable_cycle(self):
        assert get_registry().enabled is False
        live = enable_metrics()
        assert get_registry() is live and live.enabled
        # idempotent: a second bare call keeps the same registry
        assert enable_metrics() is live
        # an explicit registry always replaces
        other = MetricsRegistry()
        assert enable_metrics(other) is other
        assert get_registry() is other
        disable_metrics()
        assert get_registry().enabled is False


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_chrome_events_and_structure(self):
        tr = Tracer()
        tr.metadata("backend", {"name": "threads"})
        tr.span("phase:one_hop", cat="phase", seconds=0.25,
                args={"phase": "one_hop", "busy_seconds": 0.2})
        doc = tr.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        meta, span = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["cat"] == "__metadata"
        assert span["ph"] == "X" and span["dur"] == pytest.approx(
            0.25e6)
        assert span["ts"] >= 0
        # structure: X events only, wall-clock args stripped
        assert tr.structure() == [
            ("phase:one_hop", "phase", 0, (("phase", "one_hop"),))]
        assert len(tr) == 2

    def test_write_load_summarize_roundtrip(self, tmp_path):
        tr = Tracer()
        for i in range(3):
            tr.span("superstep:one_hop", cat="superstep", seconds=0.01,
                    args={"executed": 2, "skipped": 1})
        tr.span("run:dne", cat="run", seconds=0.1)
        path = tmp_path / "trace.json"
        tr.write(str(path))
        events = load_trace(str(path))
        assert len(events) == 4
        rows = summarize(events)
        assert rows[0]["name"] == "run:dne"  # sorted by total time
        by_name = {r["name"]: r for r in rows}
        step = by_name["superstep:one_hop"]
        assert step["count"] == 3
        assert step["executed"] == 6 and step["skipped"] == 3
        assert step["total_ms"] == pytest.approx(30.0)

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_null_tracer_is_inert(self):
        NULL_TRACER.span("x", seconds=1.0)
        NULL_TRACER.metadata("backend", {})
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.structure() == []
        assert NULL_TRACER.to_chrome()["traceEvents"] == []


# ----------------------------------------------------------------------
# result neutrality: telemetry on == telemetry off, bit for bit
# ----------------------------------------------------------------------
class TestResultNeutrality:
    @pytest.mark.parametrize("kernel", ["vectorized", "python"])
    @pytest.mark.parametrize("backend", ["simulated", *PARALLEL])
    def test_dne_traced_equals_untraced(self, graph, kernel, backend,
                                        workers):
        w = None if backend == "simulated" else workers
        base = DistributedNE(4, seed=0, kernel=kernel, backend=backend,
                             workers=w).partition(graph)
        enable_metrics(MetricsRegistry())
        try:
            traced = DistributedNE(
                4, seed=0, kernel=kernel, backend=backend, workers=w,
                tracer=Tracer()).partition(graph)
        finally:
            disable_metrics()
        assert np.array_equal(traced.assignment, base.assignment)
        assert traced.iterations == base.iterations
        for key in _PINNED_EXTRA:
            assert traced.extra[key] == base.extra[key], key

    @pytest.mark.parametrize("kernel", ["vectorized", "python"])
    @pytest.mark.parametrize("backend", ["simulated", *PARALLEL])
    def test_sne_traced_equals_untraced(self, graph, kernel, backend,
                                        workers):
        w = None if backend == "simulated" else workers
        base = SNEPartitioner(4, seed=0, kernel=kernel, backend=backend,
                              workers=w).partition(graph)
        enable_metrics(MetricsRegistry())
        try:
            traced = SNEPartitioner(
                4, seed=0, kernel=kernel, backend=backend, workers=w,
                tracer=Tracer()).partition(graph)
        finally:
            disable_metrics()
        assert np.array_equal(traced.assignment, base.assignment)
        for key in ("state_bytes", "buffer_capacity"):
            assert traced.extra[key] == base.extra[key], key

    def test_partitioners_default_to_null_telemetry(self, graph):
        """Zero-cost-when-off: no tracer flag, no live registry — the
        run records nothing anywhere."""
        assert get_registry().enabled is False
        res = DistributedNE(4, seed=0).partition(graph)
        assert res.num_partitions == 4
        assert get_registry().render_prometheus() == ""


# ----------------------------------------------------------------------
# trace structure determinism (satellite 3)
# ----------------------------------------------------------------------
class TestTraceStructure:
    def test_dne_structure_identical_across_backends(self, graph,
                                                     workers):
        structures = {}
        backends = {}
        for backend in ("simulated", *PARALLEL):
            w = None if backend == "simulated" else workers
            tracer = Tracer()
            DistributedNE(4, seed=0, backend=backend, workers=w,
                          tracer=tracer).partition(graph)
            structures[backend] = tracer.structure()
            backends[backend] = [e for e in tracer.to_chrome()
                                 ["traceEvents"] if e["ph"] == "M"]
        assert len(structures["simulated"]) > 10
        for backend in PARALLEL:
            assert structures[backend] == structures["simulated"], backend
        # backend identity rides in metadata, not structure
        for backend, events in backends.items():
            assert events[0]["args"] == {"name": backend}

    def test_sne_structure_identical_across_backends(self, graph,
                                                     workers):
        structures = {}
        for backend in ("simulated", *PARALLEL):
            w = None if backend == "simulated" else workers
            tracer = Tracer()
            SNEPartitioner(4, seed=0, backend=backend, workers=w,
                           tracer=tracer).partition(graph)
            structures[backend] = tracer.structure()
        assert structures["simulated"] == [
            ("graph_task:sne_stream", "graph_task", 0,
             (("kernel", "vectorized"), ("method", "sne"),
              ("partitions", 4)))]
        for backend in PARALLEL:
            assert structures[backend] == structures["simulated"], backend

    def test_spans_reconcile_with_superstep_ledger(self, graph):
        """--trace-out's spans must agree with the run's own step
        ledger: summing executed/skipped over superstep spans
        reproduces extra["steps_executed"/"steps_skipped"], and the
        run span carries the run totals."""
        tracer = Tracer()
        res = DistributedNE(4, seed=0, tracer=tracer).partition(graph)
        supersteps = [e for e in tracer.to_chrome()["traceEvents"]
                      if e.get("cat") == "superstep"]
        assert sum(e["args"]["executed"] for e in supersteps) == \
            res.extra["steps_executed"]
        assert sum(e["args"]["skipped"] for e in supersteps) == \
            res.extra["steps_skipped"]
        (run_span,) = [e for e in tracer.to_chrome()["traceEvents"]
                       if e.get("cat") == "run"]
        assert run_span["args"]["iterations"] == res.iterations
        assert run_span["args"]["executed"] == \
            res.extra["steps_executed"]
        # five phases per iteration, one phase span each
        phases = [e for e in tracer.to_chrome()["traceEvents"]
                  if e.get("cat") == "phase"]
        assert len(phases) == 5 * res.iterations

    def test_cluster_metrics_recorded_once(self, graph):
        """End-of-run feeding: cluster totals land in the registry
        exactly once and match the run's own accounting summary."""
        reg = enable_metrics(MetricsRegistry())
        try:
            res = DistributedNE(4, seed=0).partition(graph)
        finally:
            disable_metrics()
        summary = res.extra["cluster"]
        assert reg.counter_total("repro_cluster_messages_total") == \
            summary["total_messages"]
        assert reg.counter_total("repro_cluster_bytes_total") == \
            summary["total_bytes"]
        assert reg.counter_total("repro_cluster_barriers_total") == \
            summary["barriers"]
        assert reg.counter_total("repro_partition_runs_total") == 1


# ----------------------------------------------------------------------
# CLI: --trace-out, trace summarize, --log-level (satellite 1)
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def edges_file(self, tmp_path):
        path = tmp_path / "edges.tsv"
        save_edges_tsv(path, rmat_edges(8, 4, seed=0))
        return str(path)

    def test_trace_out_and_summarize(self, tmp_path, edges_file,
                                     capsys):
        trace_path = tmp_path / "run.trace.json"
        code = main(["partition", "--edges", edges_file,
                     "--method", "distributed_ne", "-p", "4",
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert "trace" in capsys.readouterr().out
        events = load_trace(str(trace_path))
        assert any(e.get("cat") == "superstep" for e in events)

        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "superstep:" in out and "total_ms" in out

    def test_trace_out_rejected_for_untraceable_method(self,
                                                       edges_file,
                                                       tmp_path):
        code = main(["partition", "--edges", edges_file,
                     "--method", "dbh", "-p", "4",
                     "--trace-out", str(tmp_path / "t.json")])
        assert code == 2

    def test_trace_summarize_missing_file(self, tmp_path):
        assert main(["trace", "summarize",
                     str(tmp_path / "nope.json")]) == 2

    def test_log_level_flag(self, edges_file, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            assert main(["--log-level", "INFO", "partition",
                         "--edges", edges_file, "--method", "dbh",
                         "-p", "4"]) == 0
        assert any("vertices" in r.message for r in caplog.records)

    def test_default_log_level_is_quiet(self, edges_file):
        """Satellite 1's compatibility clause: without --log-level the
        repro logger sits at WARNING, so tier-1 stdout/stderr is
        unchanged from the pre-logging CLI."""
        assert main(["partition", "--edges", edges_file,
                     "--method", "dbh", "-p", "4"]) == 0
        assert logging.getLogger("repro").getEffectiveLevel() == \
            logging.WARNING


# ----------------------------------------------------------------------
# serving surfaces: /metrics, trace endpoint, cache counters, shutdown
# ----------------------------------------------------------------------
def _parse_prometheus(text: str) -> dict:
    """Minimal exposition-format parser: {series_line: float}."""
    series = {}
    for line in text.splitlines():
        assert line, "blank lines are not emitted"
        if line.startswith("#"):
            assert line.startswith("# TYPE "), line
            continue
        name_part, _, value = line.rpartition(" ")
        series[name_part] = float(value)
    return series


@pytest.fixture(scope="class")
def serving(tmp_path_factory):
    """A served store with one run, a live registry, and one job-run
    (which records a trace and cluster metrics)."""
    from repro.serving.api import BackgroundServer, ServingAPI
    from repro.serving.store import RunStore

    tmp = tmp_path_factory.mktemp("obs-serving")
    store = RunStore(str(tmp / "runs.db"))
    graph = CSRGraph(rmat_edges(9, 6, seed=42))
    run = DistributedNE(4, seed=0).partition(graph)
    rid = store.add_run(run, seed=0, label="seeded")
    registry = enable_metrics(MetricsRegistry())
    api = ServingAPI(store, registry=registry)

    status, doc = api.handle("POST", "/api/runs", body=json.dumps(
        {"method": "distributed_ne", "dataset": "roadnet-pa",
         "partitions": 4, "seed": 1}).encode())
    assert status == 202
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, doc = api.handle("GET",
                                 f"/api/jobs/{doc['job_id']}")
        if doc["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert doc["state"] == "done", doc
    with BackgroundServer(api) as server:
        yield api, server, rid, doc["run_id"]
    store.close()
    disable_metrics()


class TestServing:
    def test_metrics_endpoint_valid_under_concurrent_load(self,
                                                          serving):
        api, server, rid, _ = serving
        errors = []

        def hammer():
            try:
                conn = http.client.HTTPConnection("127.0.0.1",
                                                  server.port)
                for _ in range(20):
                    conn.request("GET", "/metrics")
                    resp = conn.getresponse()
                    body = resp.read().decode()
                    assert resp.status == 200
                    assert resp.getheader("Content-Type").startswith(
                        "text/plain; version=0.0.4")
                    series = _parse_prometheus(body)
                    # serving + cluster series, in one exposition
                    assert any(k.startswith("repro_http_requests_total")
                               for k in series)
                    assert "repro_cluster_messages_total" in series
                    assert series["repro_cluster_messages_total"] > 0
                    assert "repro_store_runs" in series
                conn.close()
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]

    def test_run_detail_exposes_cache_counters(self, serving):
        api, server, rid, _ = serving
        api.handle("GET", f"/api/runs/{rid}/vertex/1")
        api.handle("GET", f"/api/runs/{rid}/vertex/1")
        status, doc = api.handle("GET", f"/api/runs/{rid}")
        assert status == 200
        hot = doc["cache"]["hot_vertices"]
        runs = doc["cache"]["run_arrays"]
        assert hot["hits"] >= 1 and hot["misses"] >= 1
        assert set(runs) == {"hits", "misses", "entries", "capacity"}
        assert runs["entries"] >= 1

    def test_job_run_trace_endpoint(self, serving):
        api, server, rid, job_rid = serving
        status, doc = api.handle("GET", f"/api/runs/{job_rid}/trace")
        assert status == 200
        events = doc["traceEvents"]
        assert any(e.get("cat") == "superstep" for e in events)
        # the seeded (non-job) run has no trace; unknown runs 404 too
        status, doc = api.handle("GET", f"/api/runs/{rid}/trace")
        assert status == 404 and "trace" in doc["error"]
        status, _ = api.handle("GET", "/api/runs/99999/trace")
        assert status == 404

    def test_request_metrics_use_bounded_route_labels(self, serving):
        api, server, rid, _ = serving
        api.handle("GET", f"/api/runs/{rid}/vertex/7")
        api.handle("GET", "/api/some/unknown/deep/path")
        _, text = api.handle("GET", "/metrics")
        assert 'route="/api/runs/{id}/vertex/{id}"' in text
        assert 'route="other"' in text
        assert f"/{rid}/" not in text  # raw ids never become labels

    def test_shutdown_logs_drained_summary(self, tmp_path, caplog):
        from repro.serving.api import BackgroundServer, ServingAPI
        from repro.serving.store import RunStore

        store = RunStore(str(tmp_path / "runs.db"))
        api = ServingAPI(store, registry=MetricsRegistry())
        try:
            with caplog.at_level(logging.INFO, logger="repro.serving"):
                with BackgroundServer(api) as server:
                    conn = http.client.HTTPConnection("127.0.0.1",
                                                      server.port)
                    conn.request("GET", "/api/health")
                    conn.getresponse().read()
                    conn.close()
            summaries = [r for r in caplog.records
                         if "shut down" in r.message]
            assert len(summaries) == 1
            assert summaries[0].args == (1, 1)  # 1 request, 1 conn
            assert api.request_count() == 1
        finally:
            store.close()
