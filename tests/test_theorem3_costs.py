"""Empirical checks of the Theorem 3 cost model.

Theorem 3 bounds the per-unit local work of the allocation phase by
``O(d |E| (|P| + d) / (n |P|))``, dominated by the two-hop scan.  The
allocation processes count the adjacency slots they touch; these tests
check the counts behave like the bound says: bounded by degree-scaled
totals and shrinking per process as processes are added.
"""

import pytest

from repro.core import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.metrics.bounds import theorem3_local_time_bound


@pytest.fixture(scope="module")
def graph():
    return CSRGraph(rmat_edges(10, 8, seed=3))


class TestOperationCounts:
    def test_counters_populate(self, graph):
        result = DistributedNE(8, seed=0).partition(graph)
        assert result.extra["ops_one_hop"] > 0
        assert result.extra["ops_two_hop"] > 0

    def test_two_hop_scan_dominates(self, graph):
        """The proof's premise: AllocateTwoHopNeighbors is the dominant
        local computation (each boundary vertex triggers a scan)."""
        result = DistributedNE(8, seed=0).partition(graph)
        assert (result.extra["ops_two_hop"]
                >= 0.5 * result.extra["ops_one_hop"])

    def test_total_ops_linear_in_edges(self):
        """Total adjacency work stays within a constant factor of
        d-scaled edge totals across graph sizes."""
        ratios = []
        for scale in (8, 9, 10):
            g = CSRGraph(rmat_edges(scale, 8, seed=1))
            result = DistributedNE(4, seed=0).partition(g)
            total = result.extra["ops_one_hop"] + result.extra["ops_two_hop"]
            ratios.append(total / g.num_edges)
        # ops per edge stays bounded (no superlinear blow-up)
        assert max(ratios) < 10 * min(ratios)

    def test_ops_within_theorem3_envelope(self, graph):
        """Measured per-process two-hop work <= the Theorem 3 bound
        (with unit constant, n = |P| computing units)."""
        p = 8
        result = DistributedNE(p, seed=0).partition(graph)
        per_process = result.extra["ops_two_hop"] / p
        bound = theorem3_local_time_bound(
            graph.max_degree(), graph.num_edges, p, 1)
        assert per_process <= bound

    def test_disabling_two_hop_zeroes_counter(self, graph):
        result = DistributedNE(8, seed=0, two_hop=False).partition(graph)
        assert result.extra["ops_two_hop"] == 0


class TestHistoryTrace:
    def test_history_collected_when_asked(self, graph):
        result = DistributedNE(4, seed=0,
                               collect_history=True).partition(graph)
        history = result.extra["history"]
        assert len(history) == result.iterations
        allocated = [h["allocated_edges"] for h in history]
        # monotone non-decreasing, ends with the whole graph
        assert all(b >= a for a, b in zip(allocated, allocated[1:]))
        assert allocated[-1] == graph.num_edges

    def test_history_absent_by_default(self, graph):
        result = DistributedNE(4, seed=0).partition(graph)
        assert "history" not in result.extra

    def test_live_partitions_never_increase(self, graph):
        result = DistributedNE(4, seed=0,
                               collect_history=True).partition(graph)
        live = [h["live_partitions"] for h in result.extra["history"]]
        assert all(b <= a for a, b in zip(live, live[1:]))
