"""Integration-level tests of the DistributedNE partitioner."""

import numpy as np
import pytest

from repro.core import DistributedNE
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_graph, ring_plus_complete, rmat_edges
from repro.metrics.bounds import theorem1_upper_bound
from repro.partitioners.hashing import GridPartitioner, RandomPartitioner
from tests.conftest import assert_valid_partition


class TestBasics:
    def test_valid_partition(self, small_rmat):
        assert_valid_partition(DistributedNE(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = DistributedNE(8, seed=3).partition(small_rmat)
        b = DistributedNE(8, seed=3).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DistributedNE(4, alpha=0.5)
        with pytest.raises(ValueError):
            DistributedNE(4, lam=0.0)
        with pytest.raises(ValueError):
            DistributedNE(4, lam=1.5)
        with pytest.raises(ValueError):
            DistributedNE(4, placement="3d")
        with pytest.raises(ValueError):
            DistributedNE(4, seed_strategy="magic")

    def test_single_partition(self, small_rmat):
        part = DistributedNE(1, seed=0).partition(small_rmat)
        assert part.replication_factor() == pytest.approx(1.0)

    def test_tiny_graph(self, triangle):
        part = DistributedNE(2, seed=0).partition(triangle)
        assert_valid_partition(part)

    def test_disconnected_components(self, two_triangles):
        part = DistributedNE(2, seed=0).partition(two_triangles)
        assert_valid_partition(part)

    def test_extra_metadata_present(self, small_rmat):
        part = DistributedNE(4, seed=0).partition(small_rmat)
        for key in ("lambda", "alpha", "cluster", "mem_score",
                    "selection_share", "load_seconds"):
            assert key in part.extra
        assert part.iterations > 0
        assert part.extra["cluster"]["barriers"] == 3 * part.iterations


class TestQuality:
    def test_beats_hashing(self, medium_rmat):
        """The headline claim: D.NE produces far better partitions than
        hash methods."""
        dne = DistributedNE(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        grid = GridPartitioner(16, seed=0).partition(medium_rmat)
        assert dne.replication_factor() < 0.75 * rand.replication_factor()
        assert dne.replication_factor() < grid.replication_factor()

    def test_edge_balance_near_alpha(self, medium_rmat):
        part = DistributedNE(8, seed=0, alpha=1.1).partition(medium_rmat)
        # Constraint is per-partition <= alpha * |E|/|P| (plus the final
        # iteration's overshoot, bounded by one multi-expansion batch).
        assert part.edge_balance() < 1.5

    def test_ring_near_perfect(self):
        g = CSRGraph(ring_graph(256))
        part = DistributedNE(4, seed=0).partition(g)
        assert part.replication_factor() < 1.3


class TestTheorem1Holds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("p", [2, 8])
    def test_rf_below_upper_bound_rmat(self, seed, p):
        g = CSRGraph(rmat_edges(8, 4, seed=seed))
        part = DistributedNE(p, seed=seed).partition(g)
        covered = int(np.count_nonzero(g.degrees()))
        ub = theorem1_upper_bound(covered, g.num_edges, p)
        assert part.replication_factor() <= ub + 1e-9

    def test_rf_below_upper_bound_ring_complete(self):
        g = CSRGraph(ring_plus_complete(5))
        p = 10
        part = DistributedNE(p, seed=0).partition(g)
        covered = int(np.count_nonzero(g.degrees()))
        ub = theorem1_upper_bound(covered, g.num_edges, p)
        assert part.replication_factor() <= ub + 1e-9


class TestMultiExpansion:
    def test_lambda_reduces_iterations(self, medium_rmat):
        """Figure 6's x-axis trend."""
        slow = DistributedNE(8, seed=0, lam=0.01).partition(medium_rmat)
        fast = DistributedNE(8, seed=0, lam=1.0).partition(medium_rmat)
        assert fast.iterations < slow.iterations

    def test_lambda_one_few_iterations(self, medium_rmat):
        """Paper: lambda=1 -> iterations < ~10 on every dataset."""
        part = DistributedNE(8, seed=0, lam=1.0).partition(medium_rmat)
        assert part.iterations <= 30

    def test_lambda_one_hurts_quality(self, medium_rmat):
        """Figure 6's y-axis trend: full flush degrades RF."""
        lam01 = DistributedNE(8, seed=0, lam=0.1).partition(medium_rmat)
        lam1 = DistributedNE(8, seed=0, lam=1.0).partition(medium_rmat)
        assert lam01.replication_factor() < lam1.replication_factor()


class TestAblations:
    def test_two_hop_improves_quality(self, medium_rmat):
        with_2hop = DistributedNE(8, seed=0, two_hop=True).partition(medium_rmat)
        without = DistributedNE(8, seed=0, two_hop=False).partition(medium_rmat)
        assert (with_2hop.replication_factor()
                <= without.replication_factor() + 0.05)

    def test_1d_placement_more_traffic(self, small_rmat):
        """2D placement bounds the sync fan-out; 1D multicasts wider."""
        d2 = DistributedNE(8, seed=0, placement="2d").partition(small_rmat)
        d1 = DistributedNE(8, seed=0, placement="1d").partition(small_rmat)
        assert (d1.extra["cluster"]["total_messages"]
                > d2.extra["cluster"]["total_messages"])

    def test_min_degree_seeding_runs(self, small_rmat):
        part = DistributedNE(8, seed=0,
                             seed_strategy="min_degree").partition(small_rmat)
        assert_valid_partition(part)

    def test_max_iterations_valve(self, medium_rmat):
        part = DistributedNE(8, seed=0, lam=0.01,
                             max_iterations=3).partition(medium_rmat)
        assert part.iterations <= 3
        assert_valid_partition(part)  # leftovers swept


class TestAccountingShape:
    def test_mem_score_scale_invariant(self):
        """Bytes/edge should be roughly flat across graph sizes (the
        CSR-dominated memory profile of Figure 9)."""
        small = CSRGraph(rmat_edges(8, 8, seed=0))
        large = CSRGraph(rmat_edges(11, 8, seed=0))
        ms_small = DistributedNE(4, seed=0).partition(small).extra["mem_score"]
        ms_large = DistributedNE(4, seed=0).partition(large).extra["mem_score"]
        assert ms_large < 2.5 * ms_small

    def test_communication_nonzero_multi_machine(self, small_rmat):
        part = DistributedNE(8, seed=0).partition(small_rmat)
        assert part.extra["cluster"]["total_bytes"] > 0
