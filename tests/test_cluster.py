"""Unit tests for the simulated cluster runtime and accounting."""

import numpy as np
import pytest

from repro.cluster.accounting import ClusterStats, ProcessStats, payload_nbytes
from repro.cluster.runtime import Process, SimulatedCluster, _same_machine


class TestPayloadSizing:
    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 8

    def test_numpy_array(self):
        arr = np.zeros(10, dtype=np.int64)
        assert payload_nbytes(arr) == 80

    def test_containers_sum(self):
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes((1, 2)) == 16
        assert payload_nbytes({1: 2}) == 16

    def test_nested(self):
        assert payload_nbytes([(1, 2), (3, 4)]) == 32

    def test_strings_and_bytes(self):
        assert payload_nbytes("abc") == 3
        assert payload_nbytes(b"abcd") == 4

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestProcessStats:
    def test_send_receive_counters(self):
        s = ProcessStats()
        s.record_send(100)
        s.record_send(50)
        s.record_receive(30)
        assert s.messages_sent == 2
        assert s.bytes_sent == 150
        assert s.messages_received == 1

    def test_peak_resident_tracks_max(self):
        s = ProcessStats()
        s.set_resident("a", 100)
        s.set_resident("b", 200)
        assert s.peak_resident_bytes == 300
        s.set_resident("a", 10)  # shrink: peak stays
        assert s.peak_resident_bytes == 300
        assert s.resident_bytes() == 210


class TestClusterStats:
    def test_mem_score(self):
        cs = ClusterStats()
        cs.stats_for("a").set_resident("x", 1000)
        cs.stats_for("b").set_resident("x", 3000)
        assert cs.mem_score(100) == pytest.approx(40.0)

    def test_mem_score_rejects_zero_edges(self):
        with pytest.raises(ValueError):
            ClusterStats().mem_score(0)

    def test_summary_keys(self):
        cs = ClusterStats()
        cs.stats_for("a")
        summary = cs.summary()
        assert set(summary) == {"processes", "barriers", "total_messages",
                                "total_bytes", "peak_resident_bytes"}


class TestSameMachine:
    def test_identical_pids(self):
        assert _same_machine("a", "a")

    def test_role_pairs_share_machine(self):
        assert _same_machine(("expansion", 3), ("alloc", 3))
        assert not _same_machine(("expansion", 3), ("alloc", 4))

    def test_plain_distinct(self):
        assert not _same_machine("a", "b")


class TestSimulatedCluster:
    def _pair(self):
        cluster = SimulatedCluster()
        a = cluster.add_process(Process(("alloc", 0)))
        b = cluster.add_process(Process(("alloc", 1)))
        return cluster, a, b

    def test_duplicate_pid_rejected(self):
        cluster = SimulatedCluster()
        cluster.add_process(Process("x"))
        with pytest.raises(ValueError):
            cluster.add_process(Process("x"))

    def test_message_needs_barrier(self):
        cluster, a, b = self._pair()
        a.send(b.pid, "t", 42)
        assert b.receive("t") == []  # not delivered yet
        cluster.barrier()
        assert b.receive("t") == [(a.pid, 42)]

    def test_receive_drains(self):
        cluster, a, b = self._pair()
        a.send(b.pid, "t", 1)
        cluster.barrier()
        assert len(b.receive("t")) == 1
        assert b.receive("t") == []

    def test_unknown_destination(self):
        cluster, a, _ = self._pair()
        with pytest.raises(KeyError):
            a.send("nope", "t", 1)

    def test_cross_machine_bytes_counted(self):
        cluster, a, b = self._pair()
        a.send(b.pid, "t", np.zeros(4, dtype=np.int64))  # 32 bytes
        stats = cluster.stats.stats_for(a.pid)
        assert stats.bytes_sent == 32
        assert stats.messages_sent == 1

    def test_same_machine_bytes_free(self):
        cluster = SimulatedCluster()
        e = cluster.add_process(Process(("expansion", 0)))
        al = cluster.add_process(Process(("alloc", 0)))
        e.send(al.pid, "t", np.zeros(4, dtype=np.int64))
        assert cluster.stats.stats_for(e.pid).bytes_sent == 0
        assert cluster.stats.stats_for(e.pid).messages_sent == 1

    def test_barrier_counter(self):
        cluster, a, b = self._pair()
        cluster.barrier()
        cluster.barrier()
        assert cluster.stats.barriers == 2

    def test_flush_does_not_count_barrier(self):
        cluster, a, b = self._pair()
        a.send(b.pid, "t", 1)
        cluster.flush()
        assert cluster.stats.barriers == 0
        assert b.receive("t") == [(a.pid, 1)]

    def test_message_order_preserved(self):
        cluster, a, b = self._pair()
        for i in range(5):
            a.send(b.pid, "t", i)
        cluster.barrier()
        values = [payload for _, payload in b.receive("t")]
        assert values == [0, 1, 2, 3, 4]

    def test_all_gather_sum(self):
        cluster, a, b = self._pair()
        total = cluster.all_gather_sum({a.pid: 3, b.pid: 4})
        assert total == 7
        # all-gather accounts (n-1) sends per process
        assert cluster.stats.stats_for(a.pid).messages_sent == 1

    def test_pending_resident_flushed_on_attach(self):
        p = Process("later")
        p.set_resident("pre", 512)
        cluster = SimulatedCluster()
        cluster.add_process(p)
        assert cluster.stats.stats_for("later").peak_resident_bytes == 512

    def test_processes_sorted(self):
        cluster, a, b = self._pair()
        assert cluster.processes() == [a, b]

    @pytest.mark.parametrize("src,dst", [
        (("alloc", 0), ("alloc", 1)),          # cross-machine tuples
        (("expansion", 2), ("alloc", 2)),      # co-located tuples
        ("a", "b"),                            # plain ids
        ("solo", "solo"),                      # self-send
    ])
    @pytest.mark.parametrize("payload", [
        None, 7, [(1, 2), (3, 4)],
        np.arange(6, dtype=np.int64).reshape(3, 2),
    ])
    def test_send_inline_matches_reference_accounting(self, src, dst,
                                                      payload):
        """_send's inlined fast path must equal the composition of
        _same_machine + payload_nbytes + record_send/record_receive
        (the API everything else uses) for every pid/payload shape."""
        from repro.cluster.accounting import ProcessStats, payload_nbytes

        cluster = SimulatedCluster()
        sp = cluster.add_process(Process(src))
        if dst != src:
            cluster.add_process(Process(dst))
        sp.send(dst, "t", payload)

        ref_send, ref_recv = ProcessStats(), ProcessStats()
        nbytes = 0 if _same_machine(src, dst) else payload_nbytes(payload)
        ref_send.record_send(nbytes)
        ref_recv.record_receive(nbytes)
        got_s = cluster.stats.stats_for(src)
        got_r = cluster.stats.stats_for(dst)
        assert (got_s.messages_sent, got_s.bytes_sent) == \
            (ref_send.messages_sent, ref_send.bytes_sent)
        assert (got_r.messages_received, got_r.bytes_received) == \
            (ref_recv.messages_received, ref_recv.bytes_received)
