"""Unit tests for Oblivious, HDRF, and Hybrid Ginger."""

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partitioners.ginger import HybridGingerPartitioner
from repro.partitioners.hashing import HybridHashPartitioner, RandomPartitioner
from repro.partitioners.hdrf import HDRFPartitioner
from repro.partitioners.oblivious import ObliviousPartitioner, _least_loaded
from tests.conftest import assert_valid_partition


class TestLeastLoaded:
    def test_picks_minimum(self):
        loads = np.array([5, 1, 3])
        assert _least_loaded({0, 1, 2}, loads) == 1

    def test_tie_breaks_to_smaller_id(self):
        loads = np.array([2, 2, 2])
        assert _least_loaded({2, 0, 1}, loads) == 0

    def test_subset_only(self):
        loads = np.array([0, 9, 1])
        assert _least_loaded({1, 2}, loads) == 2


class TestOblivious:
    def test_valid(self, small_rmat):
        assert_valid_partition(ObliviousPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = ObliviousPartitioner(8, seed=1).partition(small_rmat)
        b = ObliviousPartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_beats_random(self, medium_rmat):
        obli = ObliviousPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert obli.replication_factor() < rand.replication_factor()

    def test_intersection_rule(self):
        """An edge whose endpoints already share a partition joins it."""
        # Path: (0,1) then (1,2) then (0,2): endpoints of (0,2) both
        # touched partition of earlier edges.
        g = CSRGraph(np.array([[0, 1], [1, 2], [0, 2]]))
        part = ObliviousPartitioner(4, seed=0, shuffle=False).partition(g)
        # With no shuffle, edges placed in canonical order; the third
        # edge (0,2) must join the intersection of replicas(0) and
        # replicas(2) — which is nonempty only if all landed together.
        a = part.assignment
        assert a[2] in {a[0], a[1]}

    def test_no_shuffle_processes_in_order(self, small_rmat):
        a = ObliviousPartitioner(8, seed=1, shuffle=False).partition(small_rmat)
        b = ObliviousPartitioner(8, seed=2, shuffle=False).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)


class TestHDRF:
    def test_valid(self, small_rmat):
        assert_valid_partition(HDRFPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = HDRFPartitioner(8, seed=1).partition(small_rmat)
        b = HDRFPartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_beats_random(self, medium_rmat):
        hdrf = HDRFPartitioner(16, seed=0).partition(medium_rmat)
        rand = RandomPartitioner(16, seed=0).partition(medium_rmat)
        assert hdrf.replication_factor() < rand.replication_factor()

    def test_balance_is_tight(self, medium_rmat):
        """The C_bal term keeps HDRF extremely edge-balanced."""
        part = HDRFPartitioner(8, seed=0).partition(medium_rmat)
        assert part.edge_balance() < 1.05

    def test_lambda_zero_ignores_balance(self, small_rmat):
        part = HDRFPartitioner(8, seed=0, lam=0.0).partition(small_rmat)
        assert_valid_partition(part)

    def test_higher_lambda_improves_balance(self, medium_rmat):
        loose = HDRFPartitioner(8, seed=0, lam=0.1).partition(medium_rmat)
        tight = HDRFPartitioner(8, seed=0, lam=5.0).partition(medium_rmat)
        assert tight.edge_balance() <= loose.edge_balance() + 0.05

    def test_partial_degree_mode(self, small_rmat):
        part = HDRFPartitioner(
            8, seed=0, use_partial_degrees=True).partition(small_rmat)
        assert_valid_partition(part)

    def test_many_partitions_set_fallback(self, small_rmat):
        """> 64 partitions exercises the set-based replica path."""
        part = HDRFPartitioner(96, seed=0).partition(small_rmat)
        assert_valid_partition(part)


class TestHybridGinger:
    def test_valid(self, small_rmat):
        assert_valid_partition(
            HybridGingerPartitioner(8, seed=0).partition(small_rmat))

    def test_deterministic(self, small_rmat):
        a = HybridGingerPartitioner(8, seed=1).partition(small_rmat)
        b = HybridGingerPartitioner(8, seed=1).partition(small_rmat)
        assert np.array_equal(a.assignment, b.assignment)

    def test_refinement_not_worse_than_hybrid(self, medium_rmat):
        """Ginger rounds should improve (or at least not regress) the
        plain Hybrid hash's replication factor."""
        hybrid = HybridHashPartitioner(8, seed=0).partition(medium_rmat)
        ginger = HybridGingerPartitioner(8, seed=0, rounds=3).partition(medium_rmat)
        assert (ginger.replication_factor()
                <= hybrid.replication_factor() * 1.02)

    def test_zero_rounds_equals_hybrid(self, small_rmat):
        hybrid = HybridHashPartitioner(8, seed=0).partition(small_rmat)
        ginger = HybridGingerPartitioner(8, seed=0, rounds=0).partition(small_rmat)
        assert np.array_equal(hybrid.assignment, ginger.assignment)

    def test_records_moved_groups(self, medium_rmat):
        part = HybridGingerPartitioner(8, seed=0).partition(medium_rmat)
        assert "moved_groups" in part.extra
