"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    grid_road_network,
    ring_graph,
    rmat_edges,
)
from repro.metrics.quality import partition_edge_counts, validate_assignment


@pytest.fixture
def triangle() -> CSRGraph:
    """K3: 3 vertices, 3 edges."""
    return CSRGraph(np.array([[0, 1], [1, 2], [0, 2]]))


@pytest.fixture
def path4() -> CSRGraph:
    """Path 0-1-2-3."""
    return CSRGraph(np.array([[0, 1], [1, 2], [2, 3]]))


@pytest.fixture
def star() -> CSRGraph:
    """Star: hub 0 with 8 leaves."""
    return CSRGraph(np.array([[0, i] for i in range(1, 9)]))


@pytest.fixture
def two_triangles() -> CSRGraph:
    """Two disconnected triangles."""
    return CSRGraph(np.array(
        [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]]))


@pytest.fixture
def small_rmat() -> CSRGraph:
    """~2.5k-edge RMAT graph — the workhorse fixture."""
    return CSRGraph(rmat_edges(9, 6, seed=42))


@pytest.fixture
def medium_rmat() -> CSRGraph:
    """~6k-edge RMAT graph for integration tests."""
    return CSRGraph(rmat_edges(10, 8, seed=7))


@pytest.fixture
def ring16() -> CSRGraph:
    return CSRGraph(ring_graph(16))


@pytest.fixture
def k6() -> CSRGraph:
    return CSRGraph(complete_graph(6))


@pytest.fixture
def small_road() -> CSRGraph:
    return CSRGraph(grid_road_network(12, 12, seed=3))


def assert_valid_partition(result) -> None:
    """Every edge assigned exactly once to an in-range partition."""
    validate_assignment(result.graph, result.assignment,
                        result.num_partitions)
    assert len(result.assignment) == result.graph.num_edges
    counts = partition_edge_counts(result.assignment, result.num_partitions)
    assert counts.sum() == result.graph.num_edges


@pytest.fixture
def check_partition():
    return assert_valid_partition
