"""Property-based tests of the application engine.

The central invariant: application *outputs* are functions of the
graph only — any valid edge partition must produce identical results.
Hypothesis drives random graphs and random (arbitrary, not just
partitioner-produced) assignments through the engine and cross-checks
against single-machine references computed directly on the graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import pagerank, sssp, wcc
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import canonical_edges
from repro.partitioners.base import EdgePartition

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
    min_size=1, max_size=80)


def _partition_from(edges_raw, p, seed):
    edges = canonical_edges(np.array(edges_raw, dtype=np.int64))
    if len(edges) == 0:
        return None
    graph = CSRGraph(edges)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, p, size=graph.num_edges)
    return EdgePartition(graph, p, assignment, method="arbitrary")


def _reference_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Textbook BFS distances on the raw graph."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if dist[u] == np.inf:
                    dist[u] = dist[v] + 1
                    nxt.append(int(u))
        frontier = nxt
    return dist


class TestPartitionInvariance:
    @given(edges=edge_lists, p=st.integers(1, 5),
           seed=st.integers(0, 100))
    @SETTINGS
    def test_sssp_matches_bfs_reference(self, edges, p, seed):
        part = _partition_from(edges, p, seed)
        if part is None:
            return
        source = int(part.graph.edges[0, 0])
        dist, _ = sssp(part, source=source)
        ref = _reference_sssp(part.graph, source)
        assert np.array_equal(dist, ref)

    @given(edges=edge_lists, p=st.integers(1, 5),
           seed=st.integers(0, 100))
    @SETTINGS
    def test_wcc_labels_consistent_within_components(self, edges, p, seed):
        part = _partition_from(edges, p, seed)
        if part is None:
            return
        labels, _ = wcc(part)
        # every edge's endpoints share a label
        for u, v in part.graph.edges:
            assert labels[u] == labels[v]

    @given(edges=edge_lists, seed=st.integers(0, 100))
    @SETTINGS
    def test_pagerank_independent_of_assignment(self, edges, seed):
        a = _partition_from(edges, 3, seed)
        b = _partition_from(edges, 4, seed + 1)
        if a is None:
            return
        ra, _ = pagerank(a, iterations=5)
        rb, _ = pagerank(b, iterations=5)
        assert np.allclose(ra, rb, atol=1e-12)

    @given(edges=edge_lists, p=st.integers(1, 5),
           seed=st.integers(0, 100))
    @SETTINGS
    def test_pagerank_mass_conserved(self, edges, p, seed):
        part = _partition_from(edges, p, seed)
        if part is None:
            return
        ranks, _ = pagerank(part, iterations=8)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
        assert (ranks >= 0).all()


class TestCommunicationMonotonicity:
    @given(edges=edge_lists, seed=st.integers(0, 50))
    @SETTINGS
    def test_single_partition_never_communicates(self, edges, seed):
        part = _partition_from(edges, 1, seed)
        if part is None:
            return
        _, stats = pagerank(part, iterations=3)
        assert stats.comm_bytes == 0

    @given(edges=edge_lists, seed=st.integers(0, 50))
    @SETTINGS
    def test_comm_nonnegative_and_bounded(self, edges, seed):
        part = _partition_from(edges, 4, seed)
        if part is None:
            return
        _, stats = wcc(part)
        # Gather+scatter traffic per superstep is bounded by replica
        # placements (each replica sends/receives at most one value).
        placements = sum(len(np.unique(part.assignment[
            part.graph.incident_edge_ids(v)]))
            for v in range(part.graph.num_vertices)
            if part.graph.degree(v))
        assert 0 <= stats.comm_bytes <= stats.supersteps * placements * 16
