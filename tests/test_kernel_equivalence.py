"""Golden equivalence: vectorized kernels == per-slot reference.

Every hot path that grew a flat-array kernel keeps its original
implementation behind ``kernel="python"``; these tests pin the two
bit-for-bit against each other across graph shapes, partition counts,
and seeds:

* NE / SNE / Distributed NE produce identical ``assignment`` arrays,
  identical ``ops_one_hop`` / ``ops_two_hop`` counters, identical
  replication factors, and (for DNE) identical simulated-cluster
  message/byte/memory totals;
* the GAS engine's ``gather_sum`` / ``gather_min`` return bit-identical
  vectors and identical communication accounting;
* the bulk all-gather accounting matches the per-message loop exactly;
* the flat-array ``BoundaryQueue`` reproduces the heapq reference's
  exact pop order, membership semantics, and re-insert drops;
* the packed uint64-bitset replica membership matches the boolean
  matrix backend bit-for-bit across |P| ∈ {3, 64, 65, 256}, and a full
  DNE run at |P| > 64 (where the packed backend engages) stays
  bit-identical to the reference kernel;
* fused cross-partition phase dispatch at |P| = 256 with tiny
  per-partition batches stays bit-identical to per-process steps
  (``fused=False``) and to the python reference;
* the reference allocation path holds no phantom (empty) replica sets
  — the ``defaultdict`` probe leak stays fixed.
"""

import numpy as np
import pytest

from repro.apps.engine import AppRunStats, DistributedGraphEngine
from repro.cluster.runtime import Process, SimulatedCluster, _same_machine
from repro.core.allocation import (TAG_SELECT, AllocationProcess,
                                   DenseMembership, PackedMembership)
from repro.core.distributed_ne import DistributedNE
from repro.core.expansion import BoundaryQueue, HeapqBoundaryQueue
from repro.core.hash2d import (Hash1DPlacement, Hash2DPlacement,
                               unpack_bool_matrix)
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_graph, rmat_edges
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.ne import NEPartitioner
from repro.partitioners.sne import SNEPartitioner

GRAPHS = {
    "rmat": lambda: CSRGraph(rmat_edges(9, 6, seed=42)),
    "ring": lambda: CSRGraph(ring_graph(48)),
    "star": lambda: CSRGraph(np.array([[0, i] for i in range(1, 24)])),
}


@pytest.fixture(params=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


@pytest.mark.parametrize("partitions", [2, 5])
@pytest.mark.parametrize("seed", [0, 1])
class TestPartitionerEquivalence:
    def test_distributed_ne(self, graph, partitions, seed):
        vec = DistributedNE(partitions, seed=seed).partition(graph)
        ref = DistributedNE(partitions, seed=seed,
                            kernel="python").partition(graph)
        assert np.array_equal(vec.assignment, ref.assignment)
        assert vec.iterations == ref.iterations
        assert vec.extra["ops_one_hop"] == ref.extra["ops_one_hop"]
        assert vec.extra["ops_two_hop"] == ref.extra["ops_two_hop"]
        # Simulated cluster totals: same messages, bytes, barriers,
        # peak memory.
        assert vec.extra["cluster"] == ref.extra["cluster"]
        assert vec.replication_factor() == ref.replication_factor()

    def test_distributed_ne_no_two_hop(self, graph, partitions, seed):
        vec = DistributedNE(partitions, seed=seed,
                            two_hop=False).partition(graph)
        ref = DistributedNE(partitions, seed=seed, two_hop=False,
                            kernel="python").partition(graph)
        assert np.array_equal(vec.assignment, ref.assignment)
        assert vec.extra["cluster"] == ref.extra["cluster"]

    def test_ne(self, graph, partitions, seed):
        vec = NEPartitioner(partitions, seed=seed).partition(graph)
        ref = NEPartitioner(partitions, seed=seed,
                            kernel="python").partition(graph)
        assert np.array_equal(vec.assignment, ref.assignment)
        assert vec.replication_factor() == ref.replication_factor()

    @pytest.mark.parametrize("buffer_factor", [2.0, 16.0])
    def test_sne(self, graph, partitions, seed, buffer_factor):
        vec = SNEPartitioner(partitions, seed=seed,
                             buffer_factor=buffer_factor).partition(graph)
        ref = SNEPartitioner(partitions, seed=seed,
                             buffer_factor=buffer_factor,
                             kernel="python").partition(graph)
        assert np.array_equal(vec.assignment, ref.assignment)
        assert vec.replication_factor() == ref.replication_factor()


class TestBoundaryQueueEquivalence:
    """Array-heap BoundaryQueue == heapq reference, op for op."""

    def test_random_op_sequences_match(self):
        for trial in range(25):
            rng = np.random.default_rng(trial)
            arr, ref = BoundaryQueue(), HeapqBoundaryQueue()
            for _ in range(80):
                if rng.random() < 0.6:
                    n = int(rng.integers(1, 9))
                    vs = rng.integers(0, 50, n)
                    ds = rng.integers(0, 12, n)
                    arr.insert_many(vs, ds)
                    for v, d in zip(vs.tolist(), ds.tolist()):
                        ref.insert(v, d)
                else:
                    k = int(rng.integers(1, 12))
                    assert arr.pop_k_min(k) == ref.pop_k_min(k)
                assert len(arr) == len(ref)
            # Drain both completely: residual contents must match too.
            assert arr.pop_k_min(10 ** 6) == ref.pop_k_min(10 ** 6)

    def test_reinsert_after_pop_takes_new_score(self):
        q = BoundaryQueue()
        q.insert(7, 9)
        assert q.pop_k_min(1) == [7]
        q.insert(7, 1)          # membership cleared by the pop
        q.insert(3, 5)
        assert q.pop_k_min(2) == [7, 3]

    def test_insert_many_keeps_first_score_within_batch(self):
        q = BoundaryQueue()
        q.insert_many(np.array([4, 4, 9]), np.array([8, 1, 5]))
        assert len(q) == 2
        assert q.pop_k_min(2) == [9, 4]  # 4 kept Drest 8, not 1

    def test_entry_time_scores_kept(self):
        for cls in (BoundaryQueue, HeapqBoundaryQueue):
            q = cls()
            q.insert(5, 10)
            q.insert(5, 0)       # dropped: already a member
            q.insert(6, 3)
            assert q.pop_k_min(2) == [6, 5]


@pytest.mark.parametrize("partitions", [3, 64, 65, 256])
class TestPackedMembership:
    """uint64-bitset membership == boolean matrix, property-tested."""

    def test_placement_packed_matches_bool(self, partitions):
        rng = np.random.default_rng(partitions)
        vs = rng.integers(0, 10_000, 200)
        for placement in (Hash2DPlacement(partitions, seed=3),
                          Hash1DPlacement(partitions, seed=3)):
            dense = placement.replica_membership(vs)
            words = placement.replica_membership_words(vs)
            assert words.shape == (len(vs), (partitions + 63) // 64)
            assert np.array_equal(
                unpack_bool_matrix(words, partitions), dense)

    def test_backends_agree_on_random_updates(self, partitions):
        rng = np.random.default_rng(partitions + 1)
        nv = 40
        dense = DenseMembership(nv, partitions)
        packed = PackedMembership(nv, partitions)
        for _ in range(30):
            op = rng.integers(3)
            if op == 0:
                idx = rng.integers(0, nv, rng.integers(1, 8))
                p = int(rng.integers(partitions))
                assert np.array_equal(dense.test_col(idx, p),
                                      packed.test_col(idx, p))
                dense.set_col(idx, p)
                packed.set_col(idx, p)
            elif op == 1:
                k = int(rng.integers(1, 8))
                idx = rng.integers(0, nv, k)
                ps = rng.integers(0, partitions, k)
                assert np.array_equal(dense.test_pairs(idx, ps),
                                      packed.test_pairs(idx, ps))
                dense.set_pairs(idx, ps)
                packed.set_pairs(idx, ps)
            else:
                k = int(rng.integers(1, 8))
                a = rng.integers(0, nv, k)
                b = rng.integers(0, nv, k)
                md = dense.rows_and(a, b)
                mp = packed.rows_and(a, b)
                assert np.array_equal(dense.mask_any(md),
                                      packed.mask_any(mp))
                assert np.array_equal(dense.mask_count(md),
                                      packed.mask_count(mp))
                single = dense.mask_count(md) == 1
                if single.any():
                    assert np.array_equal(
                        dense.mask_single_partition(md)[single],
                        packed.mask_single_partition(mp)[single])
                dr, dc = dense.mask_nonzero(md)
                pr, pc = packed.mask_nonzero(mp)
                assert np.array_equal(dr, pr) and np.array_equal(dc, pc)
            assert dense.entries() == packed.entries()
        dnz, pnz = dense.nonzero(), packed.nonzero()
        assert np.array_equal(dnz[0], pnz[0])
        assert np.array_equal(dnz[1], pnz[1])
        if partitions > 64:
            # The point of the packed layout: 8 partitions per byte
            # instead of 1 (worthwhile only beyond the auto threshold).
            assert packed.nbytes() * 8 <= dense.nbytes() + 64 * nv

    def test_allocation_backends_bit_identical(self, partitions):
        """Same selections through dense-forced and packed-forced
        allocation processes: identical state and messages."""
        graph = CSRGraph(rmat_edges(8, 6, seed=11))
        results = {}
        for membership in ("dense", "packed"):
            cluster = SimulatedCluster()
            placement = Hash2DPlacement(1, seed=0)
            alloc = cluster.add_process(AllocationProcess(
                0, graph, np.arange(graph.num_edges), placement,
                membership=membership))
            driver = cluster.add_process(Process(("expansion", 0)))
            for p in range(1, min(partitions, 4)):
                cluster.add_process(Process(("expansion", p)))
            rng = np.random.default_rng(0)
            for _ in range(3):
                sel = np.column_stack(
                    [rng.integers(0, graph.num_vertices, 12),
                     rng.integers(0, min(partitions, 4), 12)]
                ).astype(np.int64)
                driver.send(alloc.pid, TAG_SELECT, sel)
                cluster.barrier()
                alloc.one_hop_and_sync()
                cluster.barrier()
                alloc.two_hop_and_report()
                cluster.barrier()
            assert alloc.membership_kind == membership
            results[membership] = (
                alloc.alloc.copy(), alloc.rest_degree.copy(),
                alloc.ops_one_hop, alloc.ops_two_hop,
                dict(alloc.vertex_parts),
                cluster.stats.summary())
        for a, b in zip(results["dense"], results["packed"]):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b


class TestPackedDNEEquivalence:
    """Full DNE at |P| > 64: the auto-selected packed backend stays
    bit-identical to the python reference (assignments, counters,
    message/byte/memory totals — including the membership_words
    resident entry of the Fig-9 model)."""

    def test_dne_at_65_partitions(self):
        graph = CSRGraph(rmat_edges(9, 6, seed=7))
        vec = DistributedNE(65, seed=0).partition(graph)
        ref = DistributedNE(65, seed=0, kernel="python").partition(graph)
        assert vec.extra["membership"] == "packed"
        assert ref.extra["membership"] == "dict"
        assert np.array_equal(vec.assignment, ref.assignment)
        assert vec.extra["ops_one_hop"] == ref.extra["ops_one_hop"]
        assert vec.extra["ops_two_hop"] == ref.extra["ops_two_hop"]
        assert vec.extra["cluster"] == ref.extra["cluster"]


class TestFusedDispatchEquivalence:
    """Fused phase dispatch == per-process steps at |P| = 256 with
    tiny batches.

    A small graph spread over 256 partitions is the worst case for
    the fused plane's segment bookkeeping: most per-partition batches
    hold a handful of edges and most mailboxes are empty, so any
    ordering or accounting slip between the concatenated-segment path
    and the per-process loop shows up here first."""

    def test_tiny_batches_at_256_partitions(self):
        graph = CSRGraph(rmat_edges(8, 6, seed=3))
        fused = DistributedNE(256, seed=0).partition(graph)
        plain = DistributedNE(256, seed=0, fused=False).partition(graph)
        ref = DistributedNE(256, seed=0,
                            kernel="python").partition(graph)
        assert fused.extra["membership"] == "packed"
        assert np.array_equal(fused.assignment, plain.assignment)
        assert np.array_equal(fused.assignment, ref.assignment)
        assert fused.iterations == plain.iterations
        for key in ("cluster", "ops_one_hop", "ops_two_hop",
                    "mem_score", "steps_executed", "steps_skipped"):
            assert fused.extra[key] == plain.extra[key], key
        # The python reference has no fused plane at all; its totals
        # still pin the fused run's accounting end to end.
        assert fused.extra["cluster"] == ref.extra["cluster"]
        assert fused.replication_factor() == plain.replication_factor()


class TestEngineEquivalence:
    @pytest.mark.parametrize("partitions", [1, 4, 9])
    def test_gathers_bit_identical(self, partitions):
        graph = CSRGraph(rmat_edges(9, 6, seed=42))
        part = PARTITIONER_REGISTRY["random"](
            partitions, seed=1).partition(graph)
        vec = DistributedGraphEngine(part, seed=0)
        ref = DistributedGraphEngine(part, seed=0, kernel="python")
        assert np.array_equal(vec.master, ref.master)
        assert np.array_equal(vec.replica_count, ref.replica_count)

        rng = np.random.default_rng(0)
        values = rng.random(graph.num_vertices)
        active = rng.random(graph.num_vertices) < 0.4
        dist = np.where(active, values * 10, np.inf)
        sv = AppRunStats(local_seconds=np.zeros(partitions))
        sr = AppRunStats(local_seconds=np.zeros(partitions))

        assert np.array_equal(
            vec.gather_sum(values, sv, weight_by_degree=True),
            ref.gather_sum(values, sr, weight_by_degree=True))
        assert sv.comm_bytes == sr.comm_bytes

        assert np.array_equal(
            vec.gather_min(dist, sv, active, offset=1.0),
            ref.gather_min(dist, sr, active, offset=1.0))
        assert sv.comm_bytes == sr.comm_bytes


class TestAllGatherAccounting:
    def _reference_totals(self, pids):
        sent = {pid: [0, 0] for pid in pids}
        recv = {pid: [0, 0] for pid in pids}
        for src in pids:
            for dst in pids:
                if src == dst:
                    continue
                nbytes = 0 if _same_machine(src, dst) else 8
                sent[src][0] += 1
                sent[src][1] += nbytes
                recv[dst][0] += 1
                recv[dst][1] += nbytes
        return sent, recv

    @pytest.mark.parametrize("pids", [
        [("expansion", k) for k in range(6)],
        [("expansion", 0), ("alloc", 0), ("expansion", 1)],
        ["a", "b", ("x", 1), ("y", 1)],
        ["solo"],
    ])
    def test_bulk_matches_per_message_loop(self, pids):
        cluster = SimulatedCluster()
        for pid in pids:
            cluster.add_process(Process(pid))
        total = cluster.all_gather_sum({pid: 2.0 for pid in pids})
        assert total == 2.0 * len(pids)
        sent, recv = self._reference_totals(sorted(pids, key=repr))
        for pid in pids:
            s = cluster.stats.stats_for(pid)
            assert [s.messages_sent, s.bytes_sent] == sent[pid]
            assert [s.messages_received, s.bytes_received] == recv[pid]


class TestTwoHopLoadsDelta:
    """Conflict-heavy two-hop: the loads-delta batching (vectorized
    segment reductions + collision-only replay) must match the
    reference's sequential running-loads walk bit-for-bit even when
    most contested edges collide with each other."""

    @pytest.mark.parametrize("partitions", [3, 6])
    @pytest.mark.parametrize("seed", [0, 4])
    def test_sync_flood_bit_identical(self, partitions, seed, monkeypatch):
        from collections import defaultdict

        from repro.core.allocation import TAG_SYNC

        contested = []
        orig = AllocationProcess._resolve_multi_shared
        monkeypatch.setattr(
            AllocationProcess, "_resolve_multi_shared",
            lambda self, cand_shared, tgt, multi: (
                contested.append(len(multi)),
                orig(self, cand_shared, tgt, multi))[1])

        graph = CSRGraph(rmat_edges(9, 14, seed=seed))
        results = {}
        for kernel in ("python", "vectorized"):
            cluster = SimulatedCluster()
            placement = Hash2DPlacement(1, seed=0)
            alloc = cluster.add_process(AllocationProcess(
                0, graph, np.arange(graph.num_edges), placement,
                kernel=kernel))
            peer = cluster.add_process(Process(("alloc", 1)))
            for p in range(partitions):
                cluster.add_process(Process(("expansion", p)))
            rng = np.random.default_rng(seed)
            for _ in range(5):
                vs = rng.integers(0, graph.num_vertices, 250)
                ps = rng.integers(0, partitions, 250)
                if kernel == "python":
                    payload = list(zip(vs.tolist(), ps.tolist()))
                else:
                    payload = np.column_stack([vs, ps]).astype(np.int64)
                peer.send(alloc.pid, TAG_SYNC, payload)
                alloc._ep_new = defaultdict(list)
                alloc._bp_new = []
                cluster.barrier()
                alloc.two_hop_and_report()
                cluster.barrier()
            results[kernel] = (
                alloc.alloc.copy(), alloc._part_loads.copy(),
                alloc.rest_degree.copy(), alloc.ops_two_hop,
                cluster.stats.summary())
        for a, b in zip(results["python"], results["vectorized"]):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b
        # The flood must actually produce contested (multi-shared)
        # edges through the loads-delta path, or this test pins
        # nothing.
        assert sum(contested) > 20
        assert (results["python"][0] >= 0).sum() > 100

    @pytest.mark.parametrize("trial", range(8))
    def test_resolve_multi_shared_matches_sequential_walk(self, trial):
        """Direct property test of the loads-delta resolution against
        a brute-force replay of the reference's running least-loaded
        walk — fabricated candidate batches covering both overlapping
        (colliding) and disjoint (isolated, vectorized segment-min)
        contested edges."""
        rng = np.random.default_rng(trial)
        width = int(rng.integers(4, 10))
        num_cand = int(rng.integers(6, 60))
        graph = CSRGraph(np.array([[0, 1], [1, 2]]))
        cluster = SimulatedCluster()
        alloc = cluster.add_process(AllocationProcess(
            0, graph, np.arange(graph.num_edges),
            Hash2DPlacement(1, seed=0)))
        alloc._ensure_partition_capacity(width - 1)
        base = rng.integers(0, 12, width).astype(np.int64)
        alloc._part_loads[:] = base

        # Fabricate the candidate walk: singles with random targets,
        # contested rows with 2..4 candidate partitions.  Half the
        # trials confine contested candidates to disjoint partition
        # blocks, forcing the isolated fast path.
        cand = np.zeros((num_cand, width), dtype=bool)
        tgt = np.full(num_cand, -1, dtype=np.int64)
        multi_rows = []
        disjoint = trial % 2 == 0
        block = 0
        for i in range(num_cand):
            if rng.random() < 0.5:
                tgt[i] = rng.integers(width)
            elif disjoint:
                # Each contested row gets its own partition block (and
                # once blocks run out, rows become singles), so every
                # contested edge takes the isolated segment-min path.
                if 2 * (block + 1) <= width:
                    cand[i, [2 * block, 2 * block + 1]] = True
                    multi_rows.append(i)
                    block += 1
                else:
                    tgt[i] = rng.integers(width)
            else:
                qs = rng.choice(width, size=int(rng.integers(2, 5)),
                                replace=False)
                cand[i, qs] = True
                multi_rows.append(i)
        if not multi_rows:
            return
        multi = np.array(multi_rows)

        # Brute-force reference: the sequential walk over every
        # candidate edge with running loads.
        loads = base.copy()
        expect = tgt.copy()
        for i in range(num_cand):
            if expect[i] >= 0:
                loads[expect[i]] += 1
            else:
                qs = np.flatnonzero(cand[i]).tolist()
                q = min(qs, key=lambda x: (loads[x], x))
                expect[i] = q
                loads[q] += 1

        got = tgt.copy()
        alloc._resolve_multi_shared(cand, got, multi)
        assert np.array_equal(got, expect)


class TestReferencePathHygiene:
    def test_no_phantom_replica_sets(self):
        """Two-hop membership probes must not materialise empty sets
        (the defaultdict leak inflated the Fig-9 replica report)."""
        graph = CSRGraph(rmat_edges(8, 6, seed=5))
        cluster = SimulatedCluster()
        placement = Hash2DPlacement(1, seed=0)
        alloc = cluster.add_process(AllocationProcess(
            0, graph, np.arange(graph.num_edges), placement,
            kernel="python"))
        driver = cluster.add_process(Process(("expansion", 0)))
        cluster.add_process(Process(("expansion", 1)))
        # Two rounds of selections, exercising one-hop and two-hop.
        for payload in ([(0, 0), (1, 1)], [(2, 0), (3, 1)]):
            driver.send(alloc.pid, TAG_SELECT, payload)
            cluster.barrier()
            alloc.one_hop_and_sync()
            cluster.barrier()
            alloc.two_hop_and_report()
            cluster.barrier()
        assert all(len(s) > 0 for s in alloc._parts.values())
        # The memory report counts exactly the real replica pairs.
        entries = sum(len(s) for s in alloc._parts.values())
        stats = cluster.stats.stats_for(alloc.pid)
        assert stats._resident["replica_sets"] == entries * 8

    def test_vectorized_replica_report_matches_reference(self):
        graph = CSRGraph(rmat_edges(8, 6, seed=5))
        results = {}
        for kernel in ("python", "vectorized"):
            cluster = SimulatedCluster()
            placement = Hash2DPlacement(1, seed=0)
            alloc = cluster.add_process(AllocationProcess(
                0, graph, np.arange(graph.num_edges), placement,
                kernel=kernel))
            driver = cluster.add_process(Process(("expansion", 0)))
            cluster.add_process(Process(("expansion", 1)))
            driver.send(alloc.pid, TAG_SELECT, [(0, 0), (1, 1)])
            cluster.barrier()
            alloc.one_hop_and_sync()
            cluster.barrier()
            alloc.two_hop_and_report()
            cluster.barrier()
            results[kernel] = (
                cluster.stats.stats_for(alloc.pid)._resident.copy(),
                {lv: set(ps) for lv, ps in alloc.vertex_parts.items()
                 if ps})
        assert results["python"] == results["vectorized"]
