"""Unit tests for the expansion process and boundary queue."""

import numpy as np
import pytest

from repro.core.expansion import BoundaryQueue


class TestBoundaryQueue:
    def test_pop_min_order(self):
        q = BoundaryQueue()
        q.insert(10, 5)
        q.insert(20, 1)
        q.insert(30, 3)
        assert q.pop_k_min(3) == [20, 30, 10]

    def test_pop_k_respects_k(self):
        q = BoundaryQueue()
        for v, d in [(1, 4), (2, 2), (3, 9)]:
            q.insert(v, d)
        assert q.pop_k_min(2) == [2, 1]
        assert len(q) == 1

    def test_duplicate_insert_ignored(self):
        q = BoundaryQueue()
        q.insert(7, 3)
        q.insert(7, 1)  # second insert dropped (set semantics)
        assert len(q) == 1
        assert q.pop_k_min(5) == [7]

    def test_pop_from_empty(self):
        assert BoundaryQueue().pop_k_min(3) == []

    def test_len_tracks_members(self):
        q = BoundaryQueue()
        q.insert(1, 1)
        q.insert(2, 2)
        assert len(q) == 2
        q.pop_k_min(1)
        assert len(q) == 1

    def test_tie_breaks_by_vertex_id(self):
        q = BoundaryQueue()
        q.insert(9, 2)
        q.insert(3, 2)
        assert q.pop_k_min(2) == [3, 9]


class TestMultiExpansionK:
    """k = max(1, ceil(lambda * |B|)) from Algorithm 4."""

    @pytest.mark.parametrize("lam,boundary,expected", [
        (0.1, 100, 10),
        (0.1, 5, 1),
        (1.0, 7, 7),
        (0.001, 50, 1),
        (0.5, 3, 2),
    ])
    def test_k_formula(self, lam, boundary, expected):
        k = max(1, int(np.ceil(lam * boundary)))
        assert k == expected
