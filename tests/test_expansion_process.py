"""Unit tests for the expansion process and boundary queue."""

import numpy as np
import pytest

from repro.core.expansion import BoundaryQueue, HeapqBoundaryQueue


@pytest.fixture(params=[BoundaryQueue, HeapqBoundaryQueue])
def queue_cls(request):
    """Both boundary-queue implementations share one contract."""
    return request.param


class TestBoundaryQueue:
    def test_pop_min_order(self, queue_cls):
        q = queue_cls()
        q.insert(10, 5)
        q.insert(20, 1)
        q.insert(30, 3)
        assert q.pop_k_min(3) == [20, 30, 10]

    def test_pop_k_respects_k(self, queue_cls):
        q = queue_cls()
        for v, d in [(1, 4), (2, 2), (3, 9)]:
            q.insert(v, d)
        assert q.pop_k_min(2) == [2, 1]
        assert len(q) == 1

    def test_duplicate_insert_ignored(self, queue_cls):
        q = queue_cls()
        q.insert(7, 3)
        q.insert(7, 1)  # second insert dropped (set semantics)
        assert len(q) == 1
        assert q.pop_k_min(5) == [7]

    def test_pop_from_empty(self, queue_cls):
        assert queue_cls().pop_k_min(3) == []

    def test_len_tracks_members(self, queue_cls):
        q = queue_cls()
        q.insert(1, 1)
        q.insert(2, 2)
        assert len(q) == 2
        q.pop_k_min(1)
        assert len(q) == 1

    def test_tie_breaks_by_vertex_id(self, queue_cls):
        q = queue_cls()
        q.insert(9, 2)
        q.insert(3, 2)
        assert q.pop_k_min(2) == [3, 9]


class TestArrayBoundaryQueue:
    """Batched API specific to the flat-array implementation."""

    def test_insert_many_then_pop_array(self):
        q = BoundaryQueue()
        q.insert_many(np.array([5, 1, 9]), np.array([2, 7, 2]))
        out = q.pop_k_min_array(2)
        assert out.dtype == np.int64
        assert out.tolist() == [5, 9]
        assert len(q) == 1

    def test_insert_many_respects_existing_members(self):
        q = BoundaryQueue()
        q.insert(4, 1)
        q.insert_many(np.array([4, 8]), np.array([99, 3]))
        assert len(q) == 2
        assert q.pop_k_min(2) == [4, 8]  # 4 kept its original score

    def test_membership_mask_grows_with_vertex_ids(self):
        q = BoundaryQueue()
        q.insert(10_000, 1)
        q.insert_many(np.array([999_999]), np.array([0]))
        assert len(q) == 2
        assert q.pop_k_min(2) == [999_999, 10_000]

    def test_pop_empty_array(self):
        q = BoundaryQueue()
        assert q.pop_k_min_array(3).tolist() == []
        q.insert(1, 1)
        assert q.pop_k_min_array(0).tolist() == []


class TestMultiExpansionK:
    """k = max(1, ceil(lambda * |B|)) from Algorithm 4."""

    @pytest.mark.parametrize("lam,boundary,expected", [
        (0.1, 100, 10),
        (0.1, 5, 1),
        (1.0, 7, 7),
        (0.001, 50, 1),
        (0.5, 3, 2),
    ])
    def test_k_formula(self, lam, boundary, expected):
        k = max(1, int(np.ceil(lam * boundary)))
        assert k == expected
