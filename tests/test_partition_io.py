"""Tests for partition serialisation (save/load roundtrip)."""

import numpy as np
import pytest

from repro.core import DistributedNE
from repro.partitioners.hashing import RandomPartitioner
from repro.partitioners.io import load_partition, save_partition


class TestRoundtrip:
    def test_assignment_preserved(self, small_rmat, tmp_path):
        part = RandomPartitioner(8, seed=0).partition(small_rmat)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        loaded = load_partition(path)
        assert np.array_equal(loaded.assignment, part.assignment)
        assert np.array_equal(loaded.graph.edges, part.graph.edges)

    def test_metadata_preserved(self, small_rmat, tmp_path):
        part = RandomPartitioner(8, seed=0).partition(small_rmat)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        loaded = load_partition(path)
        assert loaded.method == "random"
        assert loaded.num_partitions == 8
        assert loaded.elapsed_seconds == pytest.approx(part.elapsed_seconds)

    def test_metrics_identical_after_roundtrip(self, small_rmat, tmp_path):
        part = DistributedNE(4, seed=0).partition(small_rmat)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        loaded = load_partition(path)
        assert loaded.replication_factor() == pytest.approx(
            part.replication_factor())
        assert loaded.edge_balance() == pytest.approx(part.edge_balance())

    def test_extra_survives_json_encoding(self, small_rmat, tmp_path):
        """DistributedNE's extra contains nested dicts and numpy
        scalars; they must come back JSON-clean."""
        part = DistributedNE(4, seed=0).partition(small_rmat)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        loaded = load_partition(path)
        assert loaded.extra["lambda"] == pytest.approx(0.1)
        assert "cluster" in loaded.extra
        assert loaded.extra["cluster"]["barriers"] == \
            part.extra["cluster"]["barriers"]

    def test_isolated_vertices_preserved(self, tmp_path):
        from repro.graph.csr import CSRGraph
        g = CSRGraph(np.array([[0, 1]]), num_vertices=10)
        part = RandomPartitioner(2, seed=0).partition(g)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        loaded = load_partition(path)
        assert loaded.graph.num_vertices == 10

    def test_bad_version_rejected(self, small_rmat, tmp_path):
        import json
        part = RandomPartitioner(2, seed=0).partition(small_rmat)
        path = tmp_path / "p.npz"
        save_partition(path, part)
        # Corrupt the version field.
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["format_version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                     dtype=np.uint8)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_partition(path)
