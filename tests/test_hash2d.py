"""Unit tests for the 2D-hash initial placement."""

import numpy as np

from repro.core.hash2d import Hash1DPlacement, Hash2DPlacement
from repro.graph.generators import rmat_edges


class TestHash2DPlacement:
    def test_edges_placed_in_range(self):
        placement = Hash2DPlacement(16, seed=0)
        edges = rmat_edges(8, 4, seed=0)
        homes = placement.place_edges(edges)
        assert homes.min() >= 0
        assert homes.max() < 16

    def test_deterministic(self):
        edges = rmat_edges(8, 4, seed=0)
        a = Hash2DPlacement(16, seed=1).place_edges(edges)
        b = Hash2DPlacement(16, seed=1).place_edges(edges)
        assert np.array_equal(a, b)

    def test_placement_roughly_balanced(self):
        edges = rmat_edges(10, 8, seed=0)
        homes = Hash2DPlacement(16, seed=0).place_edges(edges)
        counts = np.bincount(homes, minlength=16)
        assert counts.min() > 0
        assert counts.max() < 3 * counts.mean()

    def test_replica_processes_cover_edge_homes(self):
        """The metadata property of §4: every edge of v lands on a
        process in v's computable replica set."""
        placement = Hash2DPlacement(16, seed=0)
        edges = rmat_edges(8, 4, seed=1)
        homes = placement.place_edges(edges)
        for eid in range(0, len(edges), 5):
            u, v = map(int, edges[eid])
            assert homes[eid] in placement.replica_processes(u)
            assert homes[eid] in placement.replica_processes(v)

    def test_replica_set_size(self):
        placement = Hash2DPlacement(16, seed=0)  # 4x4 grid
        for v in range(50):
            reps = placement.replica_processes(v)
            assert len(reps) == 4 + 4 - 1
            assert placement.replica_count(v) == 7

    def test_nonsquare_grid(self):
        placement = Hash2DPlacement(8, seed=0)  # 2x4
        assert placement.rows * placement.cols == 8
        for v in range(20):
            assert (len(placement.replica_processes(v))
                    == placement.rows + placement.cols - 1)

    def test_single_process(self):
        placement = Hash2DPlacement(1, seed=0)
        assert placement.replica_processes(5) == [0]


class TestHash1DPlacement:
    def test_replica_set_is_everything(self):
        placement = Hash1DPlacement(8, seed=0)
        assert placement.replica_processes(3) == list(range(8))
        assert placement.replica_count(3) == 8

    def test_edges_scattered(self):
        edges = rmat_edges(9, 4, seed=0)
        homes = Hash1DPlacement(8, seed=0).place_edges(edges)
        counts = np.bincount(homes, minlength=8)
        assert counts.min() > 0.7 * counts.mean()

    def test_wider_fanout_than_2d(self):
        """The ablation's point: 1D placement forces |P| sync fan-out."""
        p1 = Hash1DPlacement(16, seed=0)
        p2 = Hash2DPlacement(16, seed=0)
        assert p1.replica_count(0) > p2.replica_count(0)
