"""Serving-API dispatcher tests — routes, error codes, cursors, jobs.

These exercise :meth:`ServingAPI.handle` directly (no sockets): the
dispatcher is a pure ``(method, path, query, body) → (status,
payload)`` function, which is what makes every route testable without
a running event loop.  The socket layer gets its own coverage in
``test_serving_load.py``.

The load-bearing case is cursor stability: keyset pagination keys on
the immutable vertex ids of one frozen run, so a walk that interleaves
with concurrent run inserts must still enumerate exactly the original
set — no skips, no duplicates — where OFFSET pagination would shear.
"""

import json
import time

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners.hashing import DBHPartitioner as DBH
from repro.serving import LookupService, RunStore, ServingAPI


@pytest.fixture
def api(tmp_path):
    store = RunStore(str(tmp_path / "runs.db"))
    graph = CSRGraph(rmat_edges(9, 6, seed=0))
    result = DBH(6, seed=0).partition(graph)
    run_id = store.add_run(result, seed=0, label="smoke")
    served = ServingAPI(store, lookup=LookupService(store))
    served.run_id = run_id
    served.result = result
    yield served
    store.close()


def _body(doc) -> bytes:
    return json.dumps(doc).encode()


# ----------------------------------------------------------------------
# routes + error codes
# ----------------------------------------------------------------------
def test_health_and_run_listing(api):
    assert api.handle("GET", "/api/health") == (200, {"status": "ok"})
    status, doc = api.handle("GET", "/api/runs")
    assert status == 200
    assert [r["run_id"] for r in doc["items"]] == [api.run_id]
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}")
    assert status == 200
    assert doc["method"] == api.result.method
    assert doc["metrics"]["replication_factor"] >= 1.0
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}/metrics")
    assert status == 200 and "replication_factor" in doc["metrics"]


def test_single_lookups_match_assignment(api):
    edges = api.result.graph.edges
    assignment = api.result.assignment
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}/edge/5")
    assert status == 200 and doc["partition"] == int(assignment[5])
    u = int(edges[5, 0])
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}/vertex/{u}")
    assert status == 200
    assert int(assignment[5]) in doc["partitions"]
    assert doc["boundary"] == (doc["replicas"] >= 2)


def test_error_codes(api):
    rid = api.run_id
    cases = [
        (404, "GET", "/api/nope", None),
        (404, "GET", "/api/runs/999", None),
        (404, "GET", "/api/jobs/999", None),
        (405, "DELETE", f"/api/runs/{rid}", None),
        (405, "POST", "/api/health", None),
        (400, "GET", f"/api/runs/{rid}/vertex/999999", None),
        (400, "GET", f"/api/runs/{rid}/vertex/abc", None),
        (400, "POST", f"/api/runs/{rid}/lookup", b"not json"),
        (400, "POST", f"/api/runs/{rid}/lookup",
         _body({"vertices": [0], "edges": [0]})),
        (400, "POST", f"/api/runs/{rid}/lookup",
         _body({"vertices": [0], "kernel": "cuda"})),
        (400, "POST", f"/api/runs/{rid}/lookup",
         _body({"vertices": "0,1"})),
        (400, "POST", f"/api/runs/{rid}/lookup",
         _body({"vertices": [0.5]})),
        (400, "GET", f"/api/runs/{rid}/replicas", None),
        (400, "GET", f"/api/runs/{rid}/replicas",
         None),
    ]
    for expected, method, path, body in cases:
        status, doc = api.handle(method, path, body=body)
        assert status == expected, (method, path, doc)
        assert "error" in doc


def test_bulk_lookup_kernels_agree_over_http_shape(api):
    rng = np.random.default_rng(1)
    vertices = rng.integers(0, api.result.graph.num_vertices,
                            size=257).tolist()
    responses = {}
    for kernel in ("vectorized", "python"):
        status, doc = api.handle(
            "POST", f"/api/runs/{api.run_id}/lookup",
            body=_body({"vertices": vertices, "kernel": kernel}))
        assert status == 200 and doc["kernel"] == kernel
        responses[kernel] = (doc["counts"], doc["partitions"])
    assert responses["vectorized"] == responses["python"]
    assert sum(responses["vectorized"][0]) == len(
        responses["vectorized"][1])


def test_bulk_lookup_cap_is_413(api):
    from repro.serving.api import MAX_BULK_IDS
    status, doc = api.handle(
        "POST", f"/api/runs/{api.run_id}/lookup",
        body=_body({"edges": [0] * (MAX_BULK_IDS + 1)}))
    assert status == 413 and "error" in doc


# ----------------------------------------------------------------------
# pagination cursors
# ----------------------------------------------------------------------
def _walk(api, path, query_extra=None, limit=7):
    """Walk a cursor-paginated route to exhaustion."""
    items, cursor, pages = [], None, 0
    while True:
        query = {"limit": str(limit)}
        query.update(query_extra or {})
        if cursor is not None:
            query["cursor"] = str(cursor)
        status, doc = api.handle("GET", path, query=query)
        assert status == 200, doc
        assert doc["page"]["limit"] == limit
        items.extend(doc["items"])
        pages += 1
        cursor = doc["page"]["next_cursor"]
        assert doc["page"]["has_more"] == (cursor is not None)
        if cursor is None:
            return items, pages


def test_boundary_cursor_walk_is_complete(api):
    status, one_page = api.handle(
        "GET", f"/api/runs/{api.run_id}/boundary",
        query={"limit": "200"})
    assert status == 200
    items, pages = _walk(api, f"/api/runs/{api.run_id}/boundary")
    assert pages > 1, "fixture too small to exercise pagination"
    assert items == one_page["items"]


def test_cursor_stability_under_concurrent_inserts(api):
    """Pages fetched while other runs land in the store enumerate
    exactly the frozen run's boundary set — keyset cursors key on
    (run_id, vertex), which concurrent inserts never mutate."""
    before, _ = _walk(api, f"/api/runs/{api.run_id}/boundary")
    seen, cursor = [], None
    extra_seed = 100
    while True:
        query = {"limit": "7"}
        if cursor is not None:
            query["cursor"] = str(cursor)
        status, doc = api.handle(
            "GET", f"/api/runs/{api.run_id}/boundary", query=query)
        assert status == 200
        seen.extend(doc["items"])
        # a concurrent writer lands a whole new run between our pages
        graph = CSRGraph(rmat_edges(7, 4, seed=extra_seed))
        api.store.add_run(DBH(4, seed=extra_seed).partition(graph))
        extra_seed += 1
        cursor = doc["page"]["next_cursor"]
        if cursor is None:
            break
    assert seen == before
    vertices = [i["vertex"] for i in seen]
    assert len(vertices) == len(set(vertices))


def test_replica_pages_partition_the_vertex_set(api):
    from collections import Counter
    counted: Counter = Counter()
    for p in range(api.result.num_partitions):
        items, _ = _walk(api, f"/api/runs/{api.run_id}/replicas",
                         query_extra={"partition": str(p)})
        assert items == sorted(items)
        counted.update(items)
    # every replica counted once: total == sum of per-vertex degrees
    indptr = api.store.load_array(api.run_id, "replica_indptr")
    assert sum(counted.values()) == int(indptr[-1])


def test_page_limit_is_clamped(api):
    from repro.serving.api import MAX_PAGE_LIMIT
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}/boundary",
                             query={"limit": "99999"})
    assert status == 200
    assert doc["page"]["limit"] == MAX_PAGE_LIMIT
    status, doc = api.handle("GET", f"/api/runs/{api.run_id}/boundary",
                             query={"limit": "0"})
    assert status == 400


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
def _poll_done(api, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = api.handle("GET", f"/api/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish: {doc}")


def test_job_submit_poll_and_query(api):
    status, doc = api.handle(
        "POST", "/api/runs",
        body=_body({"method": "dbh", "dataset": "roadnet-pa",
                    "partitions": 4, "seed": 7, "label": "via-api"}))
    assert status == 202 and doc["poll"] == f"/api/jobs/{doc['job_id']}"
    final = _poll_done(api, doc["job_id"])
    assert final["state"] == "done", final
    run_id = final["run_id"]
    status, run = api.handle("GET", f"/api/runs/{run_id}")
    assert status == 200
    assert run["label"] == "via-api" and run["source"].startswith("job:")
    status, doc = api.handle("GET", f"/api/runs/{run_id}/vertex/0")
    assert status == 200 and doc["replicas"] >= 1
    status, doc = api.handle("GET", "/api/jobs")
    assert status == 200 and len(doc["items"]) == 1


def test_job_validation_errors(api):
    bad = [
        {"method": "nope", "dataset": "pokec"},
        {"method": "dbh", "dataset": "nope"},
        {"method": "dbh", "dataset": "pokec", "partitions": 0},
        {"method": "dbh", "dataset": "pokec", "seed": "x"},
        {"method": "dbh", "dataset": "pokec", "checkpoint_every": 0},
    ]
    for doc in bad:
        status, payload = api.handle("POST", "/api/runs",
                                     body=_body(doc))
        assert status == 400, (doc, payload)
    # checkpointing on a method without a checkpoint plane fails the
    # job (validated at execution, surfaced through status), not the
    # whole server
    status, doc = api.handle(
        "POST", "/api/runs",
        body=_body({"method": "dbh", "dataset": "roadnet-pa",
                    "checkpoint_every": 5}))
    assert status == 202
    final = _poll_done(api, doc["job_id"])
    assert final["state"] == "failed"
    assert "does not support" in final["error"]


def test_job_rides_the_checkpoint_plane(api, tmp_path):
    status, doc = api.handle(
        "POST", "/api/runs",
        body=_body({"method": "distributed_ne", "dataset": "roadnet-pa",
                    "partitions": 4, "seed": 1, "checkpoint_every": 8}))
    assert status == 202
    final = _poll_done(api, doc["job_id"], timeout=300.0)
    assert final["state"] == "done", final
    assert final["checkpoints"], "job reported no checkpointed steps"
    assert final["checkpoints"] == sorted(final["checkpoints"])
