"""Unit tests for the dataset registry."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    DATASETS,
    ROAD_DATASETS,
    SKEWED_DATASETS,
    load_dataset,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        expected = {"pokec", "flickr", "livejournal", "orkut", "twitter",
                    "friendster", "webuk",
                    "roadnet-ca", "roadnet-pa", "roadnet-tx"}
        assert expected == set(DATASETS)

    def test_skew_flags(self):
        assert all(spec.skewed for spec in SKEWED_DATASETS.values())
        assert not any(spec.skewed for spec in ROAD_DATASETS.values())

    def test_paper_sizes_recorded(self):
        for spec in DATASETS.values():
            assert spec.paper_vertices > 0
            assert spec.paper_edges > 0

    def test_relative_size_ordering_preserved(self):
        """Stand-ins keep the paper's dataset size ordering (Table 2)."""
        sizes = {name: len(spec.generate(seed=0))
                 for name, spec in SKEWED_DATASETS.items()}
        assert sizes["pokec"] < sizes["twitter"]
        assert sizes["flickr"] < sizes["orkut"]
        assert sizes["livejournal"] < sizes["friendster"]

    def test_unknown_kind_raises(self):
        from repro.graph.datasets import DatasetSpec
        bad = DatasetSpec("x", "nope", {})
        with pytest.raises(ValueError):
            bad.generate()


class TestLoadDataset:
    def test_returns_csr_by_default(self):
        g = load_dataset("pokec")
        assert isinstance(g, CSRGraph)
        assert g.num_edges > 1000

    def test_returns_edges_when_asked(self):
        edges = load_dataset("pokec", as_csr=False)
        assert isinstance(edges, np.ndarray)

    def test_case_insensitive(self):
        a = load_dataset("Pokec", as_csr=False)
        b = load_dataset("pokec", as_csr=False)
        assert np.array_equal(a, b)

    def test_deterministic(self):
        a = load_dataset("flickr", seed=5, as_csr=False)
        b = load_dataset("flickr", seed=5, as_csr=False)
        assert np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_skewed_standins_are_skewed(self):
        g = load_dataset("orkut")
        deg = g.degrees()
        assert deg.max() > 10 * deg[deg > 0].mean()

    def test_road_standins_are_flat(self):
        g = load_dataset("roadnet-ca")
        assert g.max_degree() <= 8
        assert 2.0 < g.average_degree() < 5.0
