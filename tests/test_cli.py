"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.edgelist import save_edges_tsv
from repro.graph.generators import rmat_edges


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "--dataset", "pokec", "--method", "nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "distributed_ne" in out
        assert "pokec" in out
        assert "roadnet-ca" in out

    def test_partition_dataset_and_inspect(self, tmp_path, capsys):
        out_path = tmp_path / "part.npz"
        code = main(["partition", "--dataset", "pokec",
                     "--method", "random", "-p", "4",
                     "--out", str(out_path)])
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "replication factor" in out

        assert main(["inspect", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "method=random" in out

    def test_partition_from_edge_file(self, tmp_path, capsys):
        edges = rmat_edges(8, 4, seed=0)
        path = tmp_path / "edges.tsv"
        save_edges_tsv(path, edges)
        code = main(["partition", "--edges", str(path),
                     "--method", "dbh", "-p", "4"])
        assert code == 0
        assert "method=dbh" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Distributed NE" in out

    def test_experiment_theorem2(self, capsys):
        assert main(["experiment", "theorem2"]) == 0
        assert "upper_bound" in capsys.readouterr().out

    def test_experiment_fig6(self, capsys):
        assert main(["experiment", "fig6", "--dataset", "flickr",
                     "-p", "4"]) == 0
        assert "lambda" in capsys.readouterr().out

    @pytest.fixture
    def saved_partition(self, tmp_path):
        out_path = tmp_path / "part.npz"
        main(["partition", "--dataset", "flickr", "--method", "grid",
              "-p", "4", "--out", str(out_path)])
        return out_path

    def test_app_sssp(self, saved_partition, capsys):
        capsys.readouterr()
        assert main(["app", "sssp", str(saved_partition),
                     "--source", "1"]) == 0
        out = capsys.readouterr().out
        assert "sssp from 1" in out
        assert "communication" in out

    def test_app_wcc(self, saved_partition, capsys):
        capsys.readouterr()
        assert main(["app", "wcc", str(saved_partition)]) == 0
        assert "components" in capsys.readouterr().out

    def test_app_pagerank(self, saved_partition, capsys):
        capsys.readouterr()
        assert main(["app", "pagerank", str(saved_partition),
                     "--iterations", "3"]) == 0
        assert "top vertex" in capsys.readouterr().out
