"""Tests for the bench harness and experiment drivers."""

import pytest

from repro.bench import experiments as ex
from repro.bench.harness import (
    QUALITY_METHODS,
    TABLE5_METHODS,
    format_series,
    format_table,
    mem_score,
    method_memory_bytes,
    run_method,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.partitioners import PARTITIONER_REGISTRY


@pytest.fixture(scope="module")
def bench_graph():
    return CSRGraph(rmat_edges(9, 6, seed=11))


class TestHarness:
    def test_run_method_known(self, bench_graph):
        result = run_method("random", bench_graph, 4)
        assert result.method == "random"

    def test_run_method_unknown(self, bench_graph):
        with pytest.raises(KeyError):
            run_method("nope", bench_graph, 4)

    def test_method_sets_registered(self):
        for name in QUALITY_METHODS + TABLE5_METHODS:
            assert name in PARTITIONER_REGISTRY

    def test_memory_model_positive_for_all(self, bench_graph):
        for name in ("random", "metis_like", "sheep", "xtrapulp",
                     "distributed_ne"):
            result = run_method(name, bench_graph, 4)
            assert method_memory_bytes(result) > 0
            assert mem_score(result) > 0

    def test_dne_memory_leaner_than_metis(self, bench_graph):
        """Figure 9's claim at laptop scale: the CSR-only design beats
        the copy-heavy multilevel one."""
        dne = run_method("distributed_ne", bench_graph, 4)
        metis = run_method("metis_like", bench_graph, 4)
        assert mem_score(dne) < mem_score(metis)

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.34567], ["x", "y"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.35" in out

    def test_format_series(self):
        out = format_series("m", [1, 2], [0.5, 1.5])
        assert out.startswith("m:")
        assert "1:0.5" in out


class TestExperimentDrivers:
    def test_fig6_rows(self, bench_graph):
        rows = ex.fig6_lambda_sweep(bench_graph, num_partitions=4,
                                    lams=(0.1, 1.0))
        assert len(rows) == 2
        assert rows[0]["iterations"] > rows[1]["iterations"]

    def test_table1_rows(self):
        rows = ex.table1_bounds(max_degree=50_000)
        assert len(rows) == 4
        dne = next(r for r in rows if r["method"] == "Distributed NE")
        assert dne["computed"] == pytest.approx(dne["paper"], abs=0.02)

    def test_theorem2_rows(self):
        rows = ex.theorem2_tightness(ns=(4, 6), measure=False)
        assert rows[1]["ratio"] > rows[0]["ratio"]

    def test_fig8_rows(self):
        rows = ex.fig8_replication_factor(
            datasets=("pokec",), methods=("random", "distributed_ne"),
            partition_counts=(4,))
        by_method = {r["method"]: r["replication_factor"] for r in rows}
        assert by_method["distributed_ne"] < by_method["random"]

    def test_fig9_rows(self):
        rows = ex.fig9_memory(datasets=("pokec",),
                              methods=("metis_like", "distributed_ne"),
                              num_partitions=4)
        scores = {r["method"]: r["mem_score_bytes_per_edge"] for r in rows}
        assert scores["distributed_ne"] < scores["metis_like"]

    def test_fig10_rows(self):
        rows = ex.fig10_elapsed_time(datasets=("pokec",),
                                     methods=("distributed_ne",),
                                     partition_counts=(4,))
        assert rows[0]["elapsed_seconds"] > 0

    def test_fig10j_weak_scaling(self):
        rows = ex.fig10j_weak_scaling(base_scale=8, edge_factor=4,
                                      machine_counts=(2, 8))
        assert len(rows) == 2
        assert rows[1]["edges"] > rows[0]["edges"]
        assert all(0 <= r["selection_share"] <= 1 for r in rows)

    def test_table4_rows(self):
        rows = ex.table4_sequential_comparison(datasets=("pokec",),
                                               num_partitions=8)
        methods = {r["method"] for r in rows}
        assert methods == {"hdrf", "ne", "sne", "distributed_ne"}

    def test_table6_rows(self):
        rows = ex.table6_road_networks(
            datasets=("roadnet-pa",),
            methods=("random", "metis_like", "distributed_ne"),
            num_partitions=4)
        rf = {r["method"]: r["replication_factor"] for r in rows}
        # road networks: high-quality methods near 1, random far above
        assert rf["metis_like"] < rf["random"]
        assert rf["distributed_ne"] < rf["random"]

    def test_ablation_two_hop(self, bench_graph):
        rows = ex.ablation_two_hop(bench_graph, num_partitions=4)
        assert {r["two_hop"] for r in rows} == {True, False}

    def test_ablation_placement(self, bench_graph):
        # A 3x3 grid has replica fan-out 5 of 9 processes vs 9 of 9 for
        # 1D scatter; with 2x2 the sets are too close to discriminate.
        rows = ex.ablation_placement(bench_graph, num_partitions=9)
        by = {r["placement"]: r for r in rows}
        assert by["1d"]["total_messages"] > by["2d"]["total_messages"]

    def test_ablation_seed_strategy(self, bench_graph):
        rows = ex.ablation_seed_strategy(bench_graph, num_partitions=4)
        assert {r["seed_strategy"] for r in rows} == {"random", "min_degree"}
