"""Legacy shim so ``pip install -e . --no-use-pep517`` works offline.

The environment has no ``wheel`` package and no network, so the PEP 517
editable path (which requires ``bdist_wheel``) is unavailable; this file
lets setuptools' classic ``develop`` command handle editable installs.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
